// Extension benchmarks: heuristic quality against the exact reference
// solver, the corner-analysis derivation of Table 3, and the editor and
// execution layers.
package impacct_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/corners"
	"repro/internal/exact"
	"repro/internal/paperex"
	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
)

// BenchmarkHeuristicVsExact compares the pipeline's makespan against
// the provably optimal one on small random instances, reporting the
// mean optimality gap (0 = the heuristic matched the optimum on every
// instance).
func BenchmarkHeuristicVsExact(b *testing.B) {
	const instances = 10
	var gap, runs float64
	for i := 0; i < b.N; i++ {
		gap, runs = 0, 0
		for seed := int64(0); seed < instances; seed++ {
			p := analysis.Generate(analysis.GenConfig{Tasks: 5, MaxDelay: 4, Seed: seed})
			h, err := sched.Run(p.Clone(), sched.Options{})
			if err != nil {
				b.Fatal(err)
			}
			opt, err := exact.Solve(p.Clone(), exact.MinFinish, exact.Config{Horizon: h.Finish() + 2})
			if err != nil || !opt.Optimal {
				continue
			}
			gap += float64(h.Finish()-opt.Finish) / float64(opt.Finish)
			runs++
		}
	}
	if runs > 0 {
		b.ReportMetric(100*gap/runs, "mean_gap_pct")
		b.ReportMetric(runs, "instances")
	}
}

// BenchmarkCornerAnalysis re-derives Table 3 from the corner framework:
// the conservative (max-corner) schedule against per-corner schedules.
func BenchmarkCornerAnalysis(b *testing.B) {
	prob, m := corners.RoverModel(rover.Cold)
	b.Run("conservative", func(b *testing.B) {
		var rep corners.Report
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = corners.Conservative(prob, m, sched.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, cm := range rep.PerCorner {
			b.ReportMetric(float64(cm.Metrics.Finish), "tau_"+cm.Corner.String()+"_s")
		}
	})
	b.Run("per-corner", func(b *testing.B) {
		var res []corners.PerCornerResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = corners.PerCorner(prob, m, sched.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range res {
			b.ReportMetric(float64(r.Metrics.Finish), "tau_"+r.Corner.String()+"_s")
		}
	})
}

// BenchmarkVerify measures the independent oracle on scheduler output.
func BenchmarkVerify(b *testing.B) {
	p := rover.BuildIteration(rover.Typical, rover.Cold)
	r, err := sched.Run(p, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := impacct.Verify(p, r.Schedule); !rep.OK() {
			b.Fatal(rep.Err())
		}
	}
}

// BenchmarkExecuteMission replays one rover iteration against the
// mission solar staircase at each phase offset.
func BenchmarkExecuteMission(b *testing.B) {
	sol := power.NewSolar(14.9)
	sol.AddPhase(600, 12)
	sol.AddPhase(1200, 9)
	sup := power.Supply{Solar: sol}
	for _, offset := range []int{0, 600, 1200} {
		b.Run(fmt.Sprintf("offset-%d", offset), func(b *testing.B) {
			c := rover.Worst
			switch offset {
			case 0:
				c = rover.Best
			case 600:
				c = rover.Typical
			}
			p := rover.BuildIteration(c, rover.Cold)
			r, err := sched.Run(p, sched.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var rep impacct.ExecReport
			for i := 0; i < b.N; i++ {
				bat := &power.Battery{MaxPower: 10}
				rep, err = impacct.Execute(p, r.Schedule, sup, bat, offset)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.BatteryUsed, "battery_J")
			b.ReportMetric(rep.SolarWasted, "wasted_J")
		})
	}
}

// BenchmarkListBaseline compares a conventional power-constrained list
// scheduler against the paper's pipeline on the nine-task example,
// where gap filling matters: the list scheduler is fast but blind to
// Pmin.
func BenchmarkListBaseline(b *testing.B) {
	p := paperex.Nine()
	b.Run("list-scheduler", func(b *testing.B) {
		var cost, util float64
		for i := 0; i < b.N; i++ {
			s, err := baseline.ListSchedule(p.Clone(), 0)
			if err != nil {
				b.Fatal(err)
			}
			_, cost, util = baseline.Metrics(p, s)
		}
		b.ReportMetric(cost, "cost_J")
		b.ReportMetric(100*util, "util_pct")
	})
	b.Run("pipeline", func(b *testing.B) {
		var r *impacct.Result
		for i := 0; i < b.N; i++ {
			var err error
			r, err = impacct.Run(p.Clone(), impacct.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.EnergyCost(), "cost_J")
		b.ReportMetric(100*r.Utilization(), "util_pct")
	})
}

// BenchmarkAblationRestarts measures multi-restart scheduling (the
// extension that explores several serialization orders) against the
// single greedy pass, reporting the mean makespan gap to the exact
// optimum on small random instances.
func BenchmarkAblationRestarts(b *testing.B) {
	for _, restarts := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("restarts-%d", restarts), func(b *testing.B) {
			var gap, runs float64
			for i := 0; i < b.N; i++ {
				gap, runs = 0, 0
				for seed := int64(0); seed < 10; seed++ {
					p := analysis.Generate(analysis.GenConfig{Tasks: 5, MaxDelay: 4, Seed: seed})
					h, err := sched.Run(p.Clone(), sched.Options{Restarts: restarts})
					if err != nil {
						continue
					}
					opt, err := exact.Solve(p.Clone(), exact.MinFinish, exact.Config{Horizon: h.Finish() + 2})
					if err != nil || !opt.Optimal {
						continue
					}
					gap += float64(h.Finish()-opt.Finish) / float64(opt.Finish)
					runs++
				}
			}
			if runs > 0 {
				b.ReportMetric(100*gap/runs, "mean_gap_pct")
			}
		})
	}
}

// BenchmarkIncrementalRelax ablates the incremental longest-path
// update inside the schedulers' delay operation against a full
// recompute per delay. Schedules are identical; only speed differs.
func BenchmarkIncrementalRelax(b *testing.B) {
	p := analysis.Generate(analysis.GenConfig{Tasks: 100, Seed: 42})
	for _, full := range []bool{false, true} {
		name := "incremental"
		if full {
			name = "full-recompute"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Run(p.Clone(), sched.Options{FullRecompute: full}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEditorReschedule measures the lock-and-reschedule loop of an
// interactive session.
func BenchmarkEditorReschedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := impacct.NewSession(rover.BuildIteration(rover.Typical, rover.Cold), impacct.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Lock("hz1"); err != nil {
			b.Fatal(err)
		}
		if err := s.Reschedule(); err != nil {
			b.Fatal(err)
		}
	}
}
