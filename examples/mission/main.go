// The mission scenario of the paper's Table 4, with battery
// accounting: travel 48 steps while the solar output falls from 14.9 W
// to 12 W to 9 W in ten-minute phases. The fixed JPL schedule plods at
// 16 steps per phase; the power-aware schedules sprint while power is
// free and nearly skip the expensive dusk phase, winning on both time
// and battery energy.
//
//	go run ./examples/mission
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/mission"
)

func main() {
	phases := mission.PaperScenario()

	run := func(policy mission.Policy) mission.Report {
		bat := &impacct.Battery{MaxPower: 10, Capacity: 5000}
		rep, err := mission.Simulate(mission.Config{
			TargetSteps: 48,
			Phases:      phases,
			Policy:      policy,
			Battery:     bat,
		})
		if err != nil {
			log.Fatalf("%s: %v", policy.Name(), err)
		}
		return rep
	}

	jpl := run(&mission.JPLPolicy{})
	pa := run(&mission.PowerAwarePolicy{})

	fmt.Print(mission.FormatTable(jpl, pa))

	fmt.Println()
	fmt.Printf("battery after the mission: JPL drew %.0f J, power-aware drew %.0f J of the 5000 J pack\n",
		jpl.BatteryDrawn, pa.BatteryDrawn)
	fmt.Printf("remaining battery buys the power-aware rover %.0f extra worst-case steps\n",
		(jpl.BatteryDrawn-pa.BatteryDrawn)/388*2)
}
