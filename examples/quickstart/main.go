// Quickstart: build a small power-aware scheduling problem with the
// public API, run the three-stage pipeline, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A sensor node: radio, sensor, and processor share a 10 W budget
	// fed by a 6 W free source (e.g. a solar cell). The radio must
	// transmit 2..20 s after the sensor sample it reports.
	p := &impacct.Problem{
		Name:      "sensor-node",
		Pmax:      10,
		Pmin:      6,
		BasePower: 1, // always-on microcontroller
	}
	p.AddTask(impacct.Task{Name: "sample", Resource: "sensor", Delay: 4, Power: 3})
	p.AddTask(impacct.Task{Name: "filter", Resource: "cpu", Delay: 6, Power: 2})
	p.AddTask(impacct.Task{Name: "tx", Resource: "radio", Delay: 3, Power: 7})
	p.AddTask(impacct.Task{Name: "rx", Resource: "radio", Delay: 3, Power: 4})
	p.AddTask(impacct.Task{Name: "log", Resource: "cpu", Delay: 3, Power: 2})

	if err := p.Precede("sample", "filter"); err != nil {
		log.Fatal(err)
	}
	p.Window("sample", "tx", 2, 20) // report 2..20 s after sampling
	if err := p.Precede("filter", "log"); err != nil {
		log.Fatal(err)
	}

	// Stage by stage, to show what each one contributes.
	timing, err := impacct.Timing(p, impacct.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timing only:  tau=%2d s  peak=%4.1f W  (spikes: %v)\n",
		timing.Finish(), timing.Peak(), timing.Profile.Spikes(p.Pmax))

	full, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full pipeline: tau=%2d s  peak=%4.1f W  cost=%.1f J  utilization=%.0f%%\n\n",
		full.Finish(), full.Peak(), full.EnergyCost(), 100*full.Utilization())

	// The power-aware Gantt chart: time view (tasks per resource) and
	// power view (profile vs the Pmax/Pmin rules).
	fmt.Print(impacct.NewChart(p, full.Schedule).ASCII(1))
}
