// Mission lifetime: the paper opens with the constraint that "the
// life-time of its mission is limited by the amount of remaining
// battery energy". This example asks the direct question: how far does
// the rover get on one battery? It runs both policies to exhaustion on
// a range of pack sizes, then shows the flight-software workflow of
// section 5.3 — precompute the schedule library on the ground, save it,
// reload it, and drive the mission from the reloaded library.
//
//	go run ./examples/lifetime
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/mission"
	"repro/internal/rover"
	"repro/internal/runtime"
	"repro/internal/sched"
)

func main() {
	phases := mission.PaperScenario()

	fmt.Println("distance achieved before battery exhaustion (7 cm steps):")
	fmt.Printf("%12s %8s %14s\n", "battery (J)", "JPL", "power-aware")
	for _, capacity := range []float64{1000, 2000, 3000, 5000} {
		jpl, err := mission.Range(phases, &mission.JPLPolicy{},
			&impacct.Battery{Capacity: capacity, MaxPower: 10}, 0)
		if err != nil {
			log.Fatal(err)
		}
		pa, err := mission.Range(phases, &mission.PowerAwarePolicy{},
			&impacct.Battery{Capacity: capacity, MaxPower: 10}, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.0f %8d %14d\n", capacity, jpl.TotalSteps, pa.TotalSteps)
	}

	// Ground segment: compute the library and "uplink" it (serialize).
	var library runtime.Selector
	for _, c := range rover.Cases {
		p := rover.BuildIteration(c, rover.Cold)
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		library.Add(runtime.NewEntry(p.Name, p, r.Schedule))
	}
	var uplink bytes.Buffer
	if err := runtime.Save(&uplink, &library); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule library serialized: %d bytes for %d schedules\n",
		uplink.Len(), len(library.Entries()))

	// Flight segment: reload (with independent re-verification) and fly.
	onboard, err := runtime.Load(&uplink)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := mission.Simulate(mission.Config{
		TargetSteps: 48,
		Phases:      phases,
		Policy:      &mission.SelectorPolicy{Library: onboard, BatteryMax: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mission from the reloaded library: %d steps in %d s, %.0f J battery\n",
		rep.TotalSteps, rep.TotalSeconds, rep.TotalCost)
}
