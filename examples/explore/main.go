// Design-space exploration: the purpose of the IMPACCT framework is
// "to enable the exploration of many more points in the design space".
// This example sweeps the nine-task paper example over a range of power
// budgets, prints the resulting time/energy design points and their
// Pareto front, and then runs the corner analysis on the Mars rover:
// one conservative schedule evaluated at all three Table 2 corners
// versus one schedule per corner — reconstructing the JPL-vs-power-
// aware comparison from the corner framework alone.
//
//	go run ./examples/explore
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/analysis"
	"repro/internal/corners"
	"repro/internal/paperex"
	"repro/internal/rover"
	"repro/internal/sched"
)

func main() {
	// Part 1: budget sweep on the nine-task example.
	p := paperex.Nine()
	budgets := []float64{11, 12, 13, 14, 15, 16, 18, 20, 24}
	pts := impacct.SweepPmax(p, budgets, impacct.Options{})
	fmt.Printf("design points for %s (Pmin tracks min(Pmax, 14)):\n", p.Name)
	fmt.Print(analysis.FormatPoints(pts))
	fmt.Println("\npareto front (finish time vs energy cost):")
	fmt.Print(analysis.FormatPoints(impacct.Pareto(pts)))

	// Part 2: corner analysis of the rover.
	prob, model := corners.RoverModel(rover.Cold)
	cons, err := corners.Conservative(prob, model, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrover, one conservative schedule (computed at the max corner):")
	for _, cm := range cons.PerCorner {
		fmt.Printf("  %-4s corner: tau=%2d s  cost=%6.1f J  util=%3.0f%%  valid=%v\n",
			cm.Corner, cm.Metrics.Finish, cm.Metrics.EnergyCost,
			100*cm.Metrics.Utilization, cm.Valid)
	}

	per, err := corners.PerCorner(prob, model, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rover, one power-aware schedule per corner:")
	for _, r := range per {
		fmt.Printf("  %-4s corner: tau=%2d s  cost=%6.1f J  util=%3.0f%%\n",
			r.Corner, r.Metrics.Finish, r.Metrics.EnergyCost, 100*r.Metrics.Utilization)
	}
	fmt.Println("\nthe conservative column is the JPL baseline re-derived; the per-corner")
	fmt.Println("column is the paper's Table 3 power-aware row (50/60/75 s).")
}
