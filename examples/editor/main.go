// Interactive schedule editing: the paper's power-aware Gantt chart is
// also "the underlying model for a power-aware design tool... designers
// can manually intervene with the automated scheduling process by
// dragging and locking the bins... while observing the results in the
// power view interactively." This example scripts such a session on the
// nine-task example: inspect the automated schedule, drag a task, lock
// it, let the scheduler rearrange everything else around the lock, and
// undo the whole excursion.
//
//	go run ./examples/editor
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/paperex"
)

func main() {
	s, err := impacct.NewSession(paperex.Nine(), impacct.Options{})
	if err != nil {
		log.Fatal(err)
	}
	show := func(label string) {
		m := s.Metrics()
		fmt.Printf("%-28s tau=%2d s  cost=%5.1f J  util=%5.1f%%  gaps=%v\n",
			label, m.Finish, m.EnergyCost, 100*m.Utilization, s.Gaps())
	}
	show("automated schedule:")

	// The designer drags task h somewhere else. Illegal drops are
	// rejected with an explanation and leave the schedule untouched.
	if err := s.Move("h", -3); err != nil {
		fmt.Println("rejected:", err)
	}
	hStart, _ := s.StartOf("h")
	target := hStart
	for delta := impacct.Time(1); delta <= 4; delta++ {
		if err := s.Move("h", hStart+delta); err == nil {
			target = hStart + delta
			break
		}
	}
	if target != hStart {
		show(fmt.Sprintf("after dragging h to %d:", target))
	}

	// Lock h where it is and let the automated pipeline redo the rest.
	if err := s.Lock("h"); err != nil {
		log.Fatal(err)
	}
	if err := s.Reschedule(); err != nil {
		log.Fatal(err)
	}
	show("rescheduled around lock:")

	// Change of mind: undo everything back to the automated schedule.
	for s.Undo() {
	}
	show("after undoing everything:")

	fmt.Println()
	fmt.Print(s.Chart().ASCII(1))
}
