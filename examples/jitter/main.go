// Power-jitter control: the paper motivates the min power constraint
// not only by free-energy harvesting but also "to control the jitter in
// the system-level power curve to improve battery usage". This example
// schedules a periodic capture/process workload plus a handful of
// movable calibration tasks twice — once with Pmin = 0 (plain
// low-power behaviour: calibrations bunch up at time zero) and once
// with a 6 W min power goal, which spreads the calibrations into the
// idle slots and lifts the profile floor.
//
//	go run ./examples/jitter
package main

import (
	"fmt"
	"log"

	"repro"
)

func buildWorkload() *impacct.Problem {
	p := &impacct.Problem{
		Name:      "periodic-dsp",
		Pmax:      12,
		BasePower: 1,
	}
	// Four frames on a 6 s cadence: a pinned 2 s capture and a 3 s
	// processing step that may float 2..12 s behind its capture.
	for i := 0; i < 4; i++ {
		cap := fmt.Sprintf("cap%d", i)
		proc := fmt.Sprintf("proc%d", i)
		p.AddTask(impacct.Task{Name: cap, Resource: "adc", Delay: 2, Power: 5})
		p.AddTask(impacct.Task{Name: proc, Resource: "dsp", Delay: 3, Power: 6})
		p.Release(cap, impacct.Time(6*i))
		p.Deadline(cap, impacct.Time(6*i))
		p.Window(cap, proc, 2, 12)
	}
	// Calibration ticks with no timing constraints: a low-power
	// scheduler leaves them bunched at t=0 under the capture burst.
	for i := 0; i < 3; i++ {
		p.AddTask(impacct.Task{Name: fmt.Sprintf("cal%d", i), Resource: "bit", Delay: 1, Power: 5})
	}
	return p
}

func run(pmin float64) *impacct.Result {
	p := buildWorkload()
	p.Pmin = pmin
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	base := run(0)   // min power goal disabled
	smooth := run(6) // keep the profile above 6 W where possible

	report := func(label string, r *impacct.Result) {
		fmt.Printf("%-8s tau=%2d s  peak=%4.1f W  floor=%4.1f W  jitter=%4.1f W\n",
			label, r.Finish(), r.Peak(), r.Profile.Floor(), r.Peak()-r.Profile.Floor())
	}
	report("Pmin=0:", base)
	report("Pmin=6:", smooth)

	fmt.Println()
	shaped := buildWorkload()
	shaped.Pmin = 6
	fmt.Print(impacct.NewChart(shaped, smooth.Schedule).ASCII(1))
}
