// The Mars rover case study (paper sections 3 and 6): schedule one
// two-step iteration of the rover's hazard-detect / steer / drive loop
// with motor heating, in each of the three environmental cases, and
// compare against the hand-crafted JPL baseline. Also writes the
// best-case schedule as rover-best.svg.
//
//	go run ./examples/rover
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/gantt"
	"repro/internal/rover"
	"repro/internal/sched"
)

func main() {
	fmt.Println("Mars rover, one iteration (two 7 cm steps) per case")
	fmt.Println()

	var library impacct.Selector
	for _, c := range rover.Cases {
		par := rover.Table2(c)
		prob := rover.BuildIteration(c, rover.Cold)
		res, err := sched.Run(prob, sched.Options{})
		if err != nil {
			log.Fatalf("%s: %v", c, err)
		}
		jplProb, jplSched := rover.JPL(c)
		jpl := rover.Measure(jplProb, jplSched)
		m := rover.Measure(prob, res.Schedule)

		fmt.Printf("%-8s solar=%4.1f W  JPL: %2d s / %5.1f J   power-aware: %2d s / %5.1f J\n",
			c, par.Solar, jpl.Finish, jpl.EnergyCost, m.Finish, m.EnergyCost)

		library.Add(impacct.NewLibraryEntry(prob.Name, prob, res.Schedule))
	}

	// The schedule library with validity ranges: a statically computed
	// schedule applies to every budget at or above its peak (paper
	// section 5.3), so a runtime selector needs no on-board scheduling.
	fmt.Println("\nschedule library (runtime-selectable):")
	fmt.Print(library.Table())

	for _, solar := range []float64{14.9, 12, 9} {
		if e, ok := library.Select(solar+10, solar); ok {
			fmt.Printf("at %4.1f W solar the selector picks %-20s (tau=%d s)\n", solar, e.Name, e.Finish)
		}
	}

	// Render the best-case schedule as a power-aware Gantt chart.
	best := rover.BuildIteration(rover.Best, rover.Cold)
	res, err := sched.Run(best, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(gantt.New(best, res.Schedule).ASCII(1))
	if err := os.WriteFile("rover-best.svg", []byte(gantt.New(best, res.Schedule).SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote rover-best.svg")
}
