package impacct_test

import (
	"testing"

	"repro"
	"repro/internal/corners"
	"repro/internal/rover"
)

func TestFacadeVerify(t *testing.T) {
	p := sensorProblem()
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := impacct.Verify(p, r.Schedule)
	if !rep.OK() {
		t.Fatalf("valid schedule rejected: %v", rep.Err())
	}
	bad := r.Schedule.Clone()
	bad.Start[0] = -1
	if impacct.Verify(p, bad).OK() {
		t.Fatal("invalid schedule accepted")
	}
}

func TestFacadeSession(t *testing.T) {
	s, err := impacct.NewSession(sensorProblem(), impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Lock("tx"); err != nil {
		t.Fatal(err)
	}
	if err := s.Reschedule(); err != nil {
		t.Fatal(err)
	}
	if len(s.Locked()) != 1 {
		t.Fatal("lock lost")
	}

	// NewSessionWith from an existing schedule.
	p2 := sensorProblem()
	r, err := impacct.Run(p2, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := impacct.NewSessionWith(p2, r.Schedule, impacct.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCorners(t *testing.T) {
	prob, m := corners.RoverModel(rover.Cold)
	rep, err := impacct.ConservativeCorners(prob, m, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerCorner) != 3 {
		t.Fatalf("corners = %d", len(rep.PerCorner))
	}
	per, err := impacct.PerCornerSchedules(prob, m, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if per[0].Metrics.Finish != 50 {
		t.Errorf("min-corner finish = %d, want 50", per[0].Metrics.Finish)
	}
}

func TestFacadeExecuteAndTrace(t *testing.T) {
	p := sensorProblem()
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs := impacct.TraceSchedule(p, r.Schedule)
	if len(evs) != 2*len(p.Tasks) {
		t.Fatalf("events = %d, want %d", len(evs), 2*len(p.Tasks))
	}
	sup := impacct.Supply{Solar: impacct.NewSolar(6)}
	bat := &impacct.Battery{MaxPower: 4}
	rep, err := impacct.Execute(p, r.Schedule, sup, bat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Energy <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestFacadeExact(t *testing.T) {
	p := &impacct.Problem{
		Name: "tiny",
		Tasks: []impacct.Task{
			{Name: "x", Resource: "R", Delay: 2, Power: 3},
			{Name: "y", Resource: "R", Delay: 2, Power: 3},
		},
	}
	sol, err := impacct.SolveExactMinFinish(p, impacct.ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Finish != 4 || !sol.Optimal {
		t.Fatalf("exact finish = %d (optimal=%v), want 4", sol.Finish, sol.Optimal)
	}
	solEc, err := impacct.SolveExactMinCost(p, impacct.ExactConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if solEc.EnergyCost != 0 { // Pmin is 0: everything is free
		t.Fatalf("cost = %g, want 0", solEc.EnergyCost)
	}
}

// NewSolar re-exported? The facade exposes Solar as a type alias; the
// constructor lives on the alias target.
func TestFacadeSolarAlias(t *testing.T) {
	s := impacct.NewSolar(5)
	if s.At(0) != 5 {
		t.Fatal("solar alias broken")
	}
}
