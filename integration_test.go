package impacct_test

import (
	"math"
	"testing"

	"repro"
	"repro/internal/mission"
	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
)

// TestMissionAccountingMatchesExecution cross-validates the two energy
// accounting paths over the whole Table 4 mission: the mission
// simulator charges each iteration its static energy cost; here every
// iteration's actual schedule is replayed second-by-second against the
// time-varying solar staircase with the correct mission-time offset.
// Because the paper scenario's iterations align exactly with the phase
// boundaries, the two totals must agree to the joule.
func TestMissionAccountingMatchesExecution(t *testing.T) {
	phases := mission.PaperScenario()
	pa := &mission.PowerAwarePolicy{}
	rep, err := mission.Simulate(mission.Config{
		TargetSteps: 48, Phases: phases, Policy: pa,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the mission iteration-by-iteration and execute each
	// schedule against the live supply.
	sol := power.NewSolar(14.9)
	sol.AddPhase(600, 12)
	sol.AddPhase(1200, 9)
	sup := power.Supply{Solar: sol}
	bat := &power.Battery{MaxPower: 10}

	type iterSpec struct {
		c    rover.Case
		kind rover.IterationKind
		n    int
	}
	plan := []iterSpec{
		{rover.Best, rover.ColdPreheat, 1},
		{rover.Best, rover.Warm, 11},
		{rover.Typical, rover.Cold, 10},
		{rover.Worst, rover.Cold, 2},
	}
	var at impacct.Time
	for _, spec := range plan {
		prob := rover.BuildIteration(spec.c, spec.kind)
		r, err := sched.Run(prob, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < spec.n; k++ {
			exec, err := impacct.Execute(prob, r.Schedule, sup, bat, at)
			if err != nil {
				t.Fatalf("t=%d (%s/%s): %v", at, spec.c, spec.kind, err)
			}
			at += exec.Finish
		}
	}
	if at != rep.TotalSeconds {
		t.Fatalf("execution timeline %d s != mission report %d s", at, rep.TotalSeconds)
	}
	if math.Abs(bat.Drawn()-rep.TotalCost) > 1e-6 {
		t.Fatalf("executed battery draw %.3f J != mission accounting %.3f J",
			bat.Drawn(), rep.TotalCost)
	}
}

// TestLibraryMissionExecutesWithinBudget drives the selector-policy
// mission and confirms every picked schedule also replays cleanly
// against the live supply at its mission offset.
func TestLibraryMissionExecutesWithinBudget(t *testing.T) {
	sol := power.NewSolar(14.9)
	sol.AddPhase(600, 12)
	sol.AddPhase(1200, 9)
	sup := power.Supply{Solar: sol}

	var library impacct.Selector
	scheds := map[string]struct {
		prob *impacct.Problem
		s    impacct.Schedule
	}{}
	for _, c := range rover.Cases {
		p := rover.BuildIteration(c, rover.Cold)
		r, err := sched.Run(p, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		library.Add(impacct.NewLibraryEntry(p.Name, p, r.Schedule))
		scheds[p.Name] = struct {
			prob *impacct.Problem
			s    impacct.Schedule
		}{p, r.Schedule}
	}

	var at impacct.Time
	steps := 0
	for steps < 48 {
		solar := sup.PminAt(at)
		e, ok := library.Select(solar+10, solar)
		if !ok {
			t.Fatalf("no schedule at t=%d (%.1f W solar)", at, solar)
		}
		entry := scheds[e.Name]
		bat := &power.Battery{MaxPower: 10}
		if _, err := impacct.Execute(entry.prob, entry.s, sup, bat, at); err != nil {
			t.Fatalf("t=%d: %s does not execute: %v", at, e.Name, err)
		}
		at += e.Finish
		steps += rover.StepsPerIteration
	}
}
