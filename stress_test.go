package impacct_test

import (
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/schedule"
)

// TestStressLargeInstances pushes realistic-scale problems through the
// full pipeline and the independent oracle. Skipped under -short.
func TestStressLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for _, n := range []int{100, 200, 300} {
		n := n
		t.Run(itoa(n), func(t *testing.T) {
			p := analysis.Generate(analysis.GenConfig{Tasks: n, Resources: 8, Seed: int64(n)})
			r, err := impacct.Run(p, impacct.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := schedule.CheckTimeValid(r.Graph, r.Compiled, r.Schedule); err != nil {
				t.Fatal(err)
			}
			if rep := impacct.Verify(p, r.Schedule); !rep.OK() {
				t.Fatal(rep.Err())
			}
			if !r.Profile.Valid(p.Pmax) {
				t.Fatalf("spikes remain at %d tasks", n)
			}
			t.Logf("%d tasks: tau=%d, cost=%.1f, util=%.3f, scans=%d, moves=%d",
				n, r.Finish(), r.EnergyCost(), r.Utilization(), r.Stats.Scans, r.Stats.Moves)
		})
	}
}

// TestStressDeepPrecedence exercises long dependency chains (deep
// graphs stress the longest-path propagation).
func TestStressDeepPrecedence(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	p := &impacct.Problem{Name: "deep", Pmax: 12, Pmin: 4, BasePower: 1}
	const depth = 150
	prev := ""
	for i := 0; i < depth; i++ {
		name := "t" + itoa(i)
		p.AddTask(impacct.Task{Name: name, Resource: "R" + itoa(i%3), Delay: 2, Power: 3 + float64(i%3)})
		if prev != "" {
			p.MinSep(prev, name, 2)
		}
		prev = name
	}
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := impacct.Verify(p, r.Schedule); !rep.OK() {
		t.Fatal(rep.Err())
	}
	if r.Finish() != 2*depth {
		t.Fatalf("chain finish = %d, want %d", r.Finish(), 2*depth)
	}
}

// TestStressWideParallel exercises many independent tasks squeezed
// through a tight budget — worst case for the spike-elimination loop.
func TestStressWideParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	p := &impacct.Problem{Name: "wide", Pmax: 15, Pmin: 10, BasePower: 1}
	const width = 60
	for i := 0; i < width; i++ {
		p.AddTask(impacct.Task{
			Name:     "w" + itoa(i),
			Resource: "R" + itoa(i), // all independent resources
			Delay:    3,
			Power:    6,
		})
	}
	r, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := impacct.Verify(p, r.Schedule); !rep.OK() {
		t.Fatal(rep.Err())
	}
	// At most two 6 W tasks fit under 15 W with the 1 W base:
	// 60 tasks * 3 s / 2 lanes = 90 s minimum.
	if r.Finish() < 90 {
		t.Fatalf("finish %d beats the 90 s packing bound", r.Finish())
	}
	if r.Finish() > 120 {
		t.Errorf("finish %d far above the 90 s bound (poor packing)", r.Finish())
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
