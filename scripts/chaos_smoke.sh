#!/usr/bin/env bash
# Chaos smoke test: boot three persistent shards behind a fast-probing,
# hedging router, drive Zipf load through the tier, and — on a fixed
# schedule — kill -9 one shard, restart it, and SIGSTOP/SIGCONT another
# while the load is running. The tier's contract must hold throughout:
#
#   * the client (loadgen, talking only to the router) sees ZERO
#     errors — every injected failure is absorbed by the prober,
#     retries, and hedging;
#   * p99 stays bounded — a SIGSTOPped shard stalls requests only
#     until the hedge fires, not until a TCP timeout;
#   * the kill -9'd shard rejoins warm: its spec store re-registers its
#     problems and its result log serves L2 hits (appends are write(2)s,
#     so they survive a process kill without fsync);
#   * every response the chaotic tier produced is byte-identical to a
#     fresh single-process oracle (the deterministic pipeline is what
#     makes failover/hedging safe at all).
#
# The in-process variant of these scenarios (under -race) lives in
# internal/chaos; this script is the real-processes, real-signals tier.
set -euo pipefail

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
cache="$(mktemp -d)"
artifacts="${CHAOS_ARTIFACTS:-chaos-artifacts}"
mkdir -p "$artifacts"
tier_log="$artifacts/tier.log"
: >"$tier_log"
pids=()
cleanup() {
  # The restarted shard is spawned by the chaos subshell; if the script
  # dies before adopting its pid it would leak, so pick it up here.
  if [ -f "$cache/pid_b_new" ]; then
    pids+=("$(cat "$cache/pid_b_new")")
  fi
  # SIGCONT first: one of the shards may still be SIGSTOPped.
  kill -CONT "${pids[@]}" 2>/dev/null || true
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$bin" "$cache"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin" ./cmd/serve ./cmd/router ./cmd/loadgen

wait_ready() {
  for _ in $(seq "$2"); do
    if curl -fsS --max-time 2 "$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

# Tier processes log to a file, not our stdout: a process that outlives
# the script (restarted mid-chaos) must not hold a pipe open, and the
# log doubles as a CI artifact.
start_shard() { # start_shard <letter> <port>; sets pid_<letter>
  "$bin/serve" -addr "127.0.0.1:$2" -shard-id "$1" -cache-dir "$cache" \
    -drain-grace 200ms >>"$tier_log" 2>&1 &
  eval "pid_$1=$!"
  pids+=("$!")
}

echo "== boot 3 shards + router (fast prober, hedging)"
booted=false
for attempt in 1 2 3; do
  port=$((19080 + (attempt - 1) * 400))
  b1="http://127.0.0.1:$((port + 1))"
  b2="http://127.0.0.1:$((port + 2))"
  b3="http://127.0.0.1:$((port + 3))"
  front="http://127.0.0.1:$port"
  start_shard a "$((port + 1))"
  start_shard b "$((port + 2))"
  start_shard c "$((port + 3))"
  if wait_ready "$b1" 100 && wait_ready "$b2" 100 && wait_ready "$b3" 100 &&
    { "$bin/router" -addr "127.0.0.1:$port" -backends "$b1,$b2,$b3" \
        -probe-interval 100ms -probe-timeout 300ms \
        -fail-threshold 2 -rise-threshold 1 \
        -retries 2 -retry-backoff 5ms -hedge-after 300ms \
        >>"$tier_log" 2>&1 &
      pids+=("$!")
      wait_ready "$front" 100; }; then
    booted=true
    break
  fi
  echo "boot attempt $attempt on ports $port-$((port + 3)) failed (port collision?); retrying" >&2
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  pids=()
done
if ! $booted; then
  echo "chaos tier never became ready after 3 port blocks" >&2
  exit 1
fi

echo "== chaos run: 12s load, kill -9 @3s, restart @6s, SIGSTOP @8s, SIGCONT @10s"
(
  sleep 3
  echo "-- chaos: kill -9 shard b" >&2
  kill -9 "$pid_b" 2>/dev/null || true
  sleep 3
  echo "-- chaos: restart shard b" >&2
  "$bin/serve" -addr "127.0.0.1:$((port + 2))" -shard-id b -cache-dir "$cache" \
    >>"$tier_log" 2>&1 &
  echo "$!" >"$cache/pid_b_new"
  sleep 2
  echo "-- chaos: SIGSTOP shard c" >&2
  kill -STOP "$pid_c" 2>/dev/null || true
  sleep 2
  echo "-- chaos: SIGCONT shard c" >&2
  kill -CONT "$pid_c" 2>/dev/null || true
) &
chaos_pid=$!

# Fixed seed: the Zipf draw sequence, the problem pool, and therefore
# the whole failure interleaving are reproducible. The pool parameters
# must match serving_smoke.sh: this (tasks, seed) combination is known
# to generate only specs that satisfy their own power bound, so every
# registration is accepted.
"$bin/loadgen" -target "$front" -duration 12s -workers 4 -zipf 1.1 \
  -problems 24 -tasks 15 -seed 7 \
  -max-errors 0 -max-p99 5s -json >"$artifacts/loadgen.json"
wait "$chaos_pid"
pids+=("$(cat "$cache/pid_b_new")")
cat "$artifacts/loadgen.json"

echo "== revived shard must be warm (L2 hits from the killed store)"
wait_ready "$b2" 50
l2="$(curl -fsS "$b2/stats" | tr -d ' \n' | grep -o '"hits_l2":[0-9]*' | cut -d: -f2)"
echo "shard b hits_l2=$l2 after kill -9 + restart"
if [ -z "$l2" ] || [ "$l2" -lt 1 ]; then
  echo "revived shard served no L2 hits; warm start after kill -9 failed" >&2
  exit 1
fi

echo "== differential replay vs single-process oracle"
oracle_port=$((port + 7))
oracle="http://127.0.0.1:$oracle_port"
"$bin/serve" -addr "127.0.0.1:$oracle_port" >>"$tier_log" 2>&1 &
pids+=("$!")
wait_ready "$oracle" 100
# Registering the same pool (same seed/tasks) makes the oracle compute
# the same problems the chaotic tier served.
"$bin/loadgen" -target "$oracle" -duration 1s -workers 2 -zipf 1.1 \
  -problems 24 -tasks 15 -seed 7 >/dev/null
for i in $(seq 0 23); do
  name="$(printf 'load-%04d' "$i")"
  curl -fsS "$front/schedule?problem=$name&format=json" >"$cache/tier.json"
  curl -fsS "$oracle/schedule?problem=$name&format=json" >"$cache/oracle.json"
  if ! cmp -s "$cache/tier.json" "$cache/oracle.json"; then
    echo "response for $name differs between the chaotic tier and the oracle" >&2
    diff "$cache/oracle.json" "$cache/tier.json" | head -20 >&2 || true
    exit 1
  fi
done

echo "== chaos smoke passed"
