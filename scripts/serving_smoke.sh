#!/usr/bin/env bash
# Serving-tier smoke test: boot two persistent backends behind the
# router, drive Zipf-skewed load through the tier, then restart the
# backends and prove the persistent store warm-starts — the post-restart
# run must serve L2 hits (results computed before the restart) within a
# p99 latency budget. This is the end-to-end check that write-through,
# fsync-on-drain, recovery, and consistent routing compose.
set -euo pipefail

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
cache="$(mktemp -d)"
pids=()
cleanup() {
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$bin" "$cache"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin" ./cmd/serve ./cmd/router ./cmd/loadgen

b1=http://127.0.0.1:18081
b2=http://127.0.0.1:18082
front=http://127.0.0.1:18080

wait_ready() {
  for _ in $(seq 100); do
    if curl -fsS "$1/stats" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "backend $1 never became ready" >&2
  exit 1
}

start_backends() {
  "$bin/serve" -addr 127.0.0.1:18081 -shard-id a -cache-dir "$cache" &
  pid_a=$!
  "$bin/serve" -addr 127.0.0.1:18082 -shard-id b -cache-dir "$cache" &
  pid_b=$!
  pids+=("$pid_a" "$pid_b")
  wait_ready "$b1"
  wait_ready "$b2"
}

echo "== boot 2 backends + router"
start_backends
"$bin/router" -addr 127.0.0.1:18080 -backends "$b1,$b2" &
pids+=($!)
wait_ready "$front"

echo "== cold run (populates L1 + persistent store)"
"$bin/loadgen" -target "$front" -duration 5s -workers 4 -zipf 1.1 \
  -problems 24 -tasks 15 -seed 7

echo "== restart backends (graceful drain flushes + fsyncs the store)"
kill -TERM "$pid_a" "$pid_b"
wait "$pid_a" "$pid_b" || true
start_backends

echo "== warm run (must serve L2 hits from the recovered store)"
"$bin/loadgen" -target "$front" -duration 5s -workers 4 -zipf 1.1 \
  -problems 24 -tasks 15 -seed 7 \
  -min-l2-hits 1 -max-p99 2s -json

echo "== serving smoke passed"
