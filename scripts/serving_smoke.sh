#!/usr/bin/env bash
# Serving-tier smoke test: boot two persistent backends behind the
# router, drive Zipf-skewed load through the tier, then restart the
# backends and prove the persistent store warm-starts — the post-restart
# run must serve L2 hits (results computed before the restart) within a
# p99 latency budget. This is the end-to-end check that write-through,
# fsync-on-drain, recovery, and consistent routing compose.
#
# Ports are retried: on a shared CI machine another job (or a leftover
# process) may hold the default port block, so a boot that does not
# become ready tears the half-started tier down and retries the whole
# boot on a different block before giving up.
set -euo pipefail

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
cache="$(mktemp -d)"
pids=()
cleanup() {
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$bin" "$cache"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin" ./cmd/serve ./cmd/router ./cmd/loadgen

# wait_ready <url> <tries>: poll <url>/readyz — the same readiness
# verdict the router's prober consumes — until it answers 200. No pid
# heuristics needed: a process that died (port collision) simply never
# answers and the poll budget expires. --max-time keeps a squatter that
# accepts but never answers from hanging the probe (and with it the
# whole boot attempt).
wait_ready() {
  for _ in $(seq "$2"); do
    if curl -fsS --max-time 2 "$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

start_backends() {
  "$bin/serve" -addr "127.0.0.1:$((port + 1))" -shard-id a -cache-dir "$cache" &
  pids+=("$!")
  pid_a=$!
  "$bin/serve" -addr "127.0.0.1:$((port + 2))" -shard-id b -cache-dir "$cache" &
  pids+=("$!")
  pid_b=$!
  wait_ready "$b1" 100 && wait_ready "$b2" 100
}

echo "== boot 2 backends + router"
booted=false
for attempt in 1 2 3; do
  # A fresh port block per attempt; the first is the historical default.
  port=$((18080 + (attempt - 1) * 400))
  b1="http://127.0.0.1:$((port + 1))"
  b2="http://127.0.0.1:$((port + 2))"
  front="http://127.0.0.1:$port"
  if start_backends &&
    { "$bin/router" -addr "127.0.0.1:$port" -backends "$b1,$b2" &
      pids+=("$!")
      wait_ready "$front" 100; }; then
    booted=true
    break
  fi
  echo "boot attempt $attempt on ports $port-$((port + 2)) failed (port collision?); retrying" >&2
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  pids=()
done
if ! $booted; then
  echo "serving tier never became ready after 3 port blocks" >&2
  exit 1
fi

echo "== cold run (populates L1 + persistent store)"
"$bin/loadgen" -target "$front" -duration 5s -workers 4 -zipf 1.1 \
  -problems 24 -tasks 15 -seed 7

echo "== restart backends (graceful drain flushes + fsyncs the store)"
kill -TERM "$pid_a" "$pid_b"
wait "$pid_a" "$pid_b" || true
# The block is already proven free (we just ran on it); a transient
# TIME_WAIT rebind hiccup is covered by the ready timeout.
if ! start_backends; then
  echo "backends did not come back after restart" >&2
  exit 1
fi

echo "== warm run (must serve L2 hits from the recovered store)"
"$bin/loadgen" -target "$front" -duration 5s -workers 4 -zipf 1.1 \
  -problems 24 -tasks 15 -seed 7 \
  -min-l2-hits 1 -max-p99 2s -json

echo "== serving smoke passed"
