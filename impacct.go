// Package impacct is the public API of this reproduction of
// "Power-Aware Scheduling under Timing Constraints for Mission-Critical
// Embedded Systems" (Liu, Chou, Bagherzadeh, Kurdahi; DAC 2001), the
// scheduling core of the IMPACCT system-level design framework.
//
// The library schedules non-preemptive tasks with min/max timing
// separations onto heterogeneous execution resources under a hard max
// power budget and a soft min power goal:
//
//	p := &impacct.Problem{Pmax: 16, Pmin: 14}
//	p.AddTask(impacct.Task{Name: "heat", Resource: "heater", Delay: 5, Power: 7.6})
//	p.AddTask(impacct.Task{Name: "steer", Resource: "motors", Delay: 5, Power: 4.3})
//	p.Window("heat", "steer", 5, 50) // heat 5..50 s before steering
//	res, err := impacct.Run(p, impacct.Options{})
//
// Run executes the paper's three-stage pipeline — timing scheduling,
// max-power spike elimination, min-power gap filling — and returns the
// schedule, its power profile, and the energy-cost/utilization metrics.
// See the examples directory for complete programs, including the Mars
// rover case study the paper evaluates.
package impacct

import (
	"context"
	"io"

	"repro/internal/analysis"
	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/spec"
)

// Core model vocabulary (see internal/model).
type (
	// Task is a schedulable unit of work: delay, power, resource.
	Task = model.Task
	// Constraint is a min/max separation between task start times.
	Constraint = model.Constraint
	// Problem is a complete scheduling problem.
	Problem = model.Problem
	// Time is a point or duration on the discrete time axis (seconds).
	Time = model.Time
	// Machine is a named execution unit with speed and power-scale
	// factors; an empty machine set is the paper's single-system model.
	Machine = model.Machine
	// DVSLevel is one (duration multiplier, power) operating point on a
	// task's voltage/speed tradeoff curve.
	DVSLevel = model.DVSLevel
	// Assignment records the chosen machine and DVS level per task; nil
	// for degenerate (machine-less, single-level) problems.
	Assignment = model.Assignment
)

// Anchor is the reserved name of the virtual time-zero task; use it in
// constraints to express release times and deadlines.
const Anchor = model.Anchor

// Scheduling pipeline (see internal/sched).
type (
	// Options tunes the schedulers' heuristics.
	Options = sched.Options
	// Result is a computed schedule with its power profile and stats.
	Result = sched.Result
	// Stats counts heuristic effort.
	Stats = sched.Stats
	// ScanOrder selects the min-power gap-visit order.
	ScanOrder = sched.ScanOrder
	// SlotChoice selects the min-power slot heuristic.
	SlotChoice = sched.SlotChoice
	// Schedule assigns a start time to every task.
	Schedule = schedule.Schedule
)

// Scan orders for Options.ScanOrders.
const (
	ScanForward = sched.ScanForward
	ScanReverse = sched.ScanReverse
	ScanRandom  = sched.ScanRandom
)

// Slot heuristics for Options.SlotChoices.
const (
	SlotStartAtGap     = sched.SlotStartAtGap
	SlotFinishAtGapEnd = sched.SlotFinishAtGapEnd
	SlotRandom         = sched.SlotRandom
)

// ErrInfeasible wraps scheduling failures caused by unsatisfiable
// constraints.
var ErrInfeasible = sched.ErrInfeasible

// Run executes the full power-aware pipeline: timing scheduling, then
// max-power spike elimination, then best-effort min-power gap filling.
func Run(p *Problem, opts Options) (*Result, error) { return sched.Run(p, opts) }

// RunCtx is Run under a context: the pipeline polls ctx cooperatively
// inside its search loops and aborts with the context's error (wrapped,
// never a partial result) once ctx is done.
func RunCtx(ctx context.Context, p *Problem, opts Options) (*Result, error) {
	return sched.RunCtx(ctx, p, opts)
}

// Timing runs only the time-constrained scheduler (paper Fig. 3).
func Timing(p *Problem, opts Options) (*Result, error) { return sched.Timing(p, opts) }

// MaxPower runs timing scheduling plus spike elimination (Fig. 4).
func MaxPower(p *Problem, opts Options) (*Result, error) { return sched.MaxPower(p, opts) }

// MinPower is an alias for Run (Fig. 6 completes the pipeline).
func MinPower(p *Problem, opts Options) (*Result, error) { return sched.MinPower(p, opts) }

// Power profiles and sources (see internal/power).
type (
	// Profile is a schedule's piecewise-constant power profile.
	Profile = power.Profile
	// Solar is a time-varying free power source.
	Solar = power.Solar
	// Battery is a non-rechargeable store with bounded output power.
	Battery = power.Battery
	// Supply couples solar and battery into Pmax/Pmin levels.
	Supply = power.Supply
)

// BuildProfile computes the power profile of a schedule.
func BuildProfile(tasks []Task, s Schedule, base float64) Profile {
	return power.Build(tasks, s, base)
}

// NewSolar returns a constant free power source producing watts.
func NewSolar(watts float64) *Solar { return power.NewSolar(watts) }

// Specification front-end (see internal/spec).

// ParseSpec reads a problem from its textual specification.
func ParseSpec(r io.Reader) (*Problem, error) { return spec.Parse(r) }

// ParseSpecFile reads a problem specification from a file.
func ParseSpecFile(path string) (*Problem, error) { return spec.ParseFile(path) }

// ParseSpecString reads a problem specification from a string.
func ParseSpecString(s string) (*Problem, error) { return spec.ParseString(s) }

// FormatSpec renders a problem in the specification language.
func FormatSpec(p *Problem) string { return spec.Format(p) }

// Power-aware Gantt charts (see internal/gantt).

// Chart is a schedule prepared for rendering as a power-aware Gantt
// chart (time view + power view).
type Chart = gantt.Chart

// NewChart builds a chart from a problem and a schedule.
func NewChart(p *Problem, s Schedule) *Chart { return gantt.New(p, s) }

// Runtime schedule selection (see internal/runtime).
type (
	// LibraryEntry is a precomputed schedule with its validity range.
	LibraryEntry = runtime.Entry
	// Selector picks the best precomputed schedule for the ambient
	// power conditions.
	Selector = runtime.Selector
)

// NewLibraryEntry computes the validity range of a schedule.
func NewLibraryEntry(name string, p *Problem, s Schedule) LibraryEntry {
	return runtime.NewEntry(name, p, s)
}

// Design-space exploration (see internal/analysis).
type (
	// DesignPoint is one evaluated (Pmax, Pmin) combination.
	DesignPoint = analysis.Point
	// GenConfig parameterizes the random problem generator.
	GenConfig = analysis.GenConfig
)

// SweepPmax evaluates the problem under a list of power budgets.
func SweepPmax(p *Problem, budgets []float64, opts Options) []DesignPoint {
	return analysis.SweepPmax(p, budgets, opts)
}

// SweepGrid evaluates every feasible (pmax, pmin) combination.
func SweepGrid(p *Problem, pmaxs, pmins []float64, opts Options) []DesignPoint {
	return analysis.SweepGrid(p, pmaxs, pmins, opts)
}

// Pareto filters design points to the time/energy non-dominated front.
func Pareto(pts []DesignPoint) []DesignPoint { return analysis.Pareto(pts) }

// GenerateProblem builds a random feasible problem for scaling
// experiments.
func GenerateProblem(cfg GenConfig) *Problem { return analysis.Generate(cfg) }
