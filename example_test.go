package impacct_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the complete pipeline on a two-task problem
// whose power budget forces serialization.
func Example() {
	p := &impacct.Problem{
		Name: "two-radios",
		Tasks: []impacct.Task{
			{Name: "tx1", Resource: "radio1", Delay: 4, Power: 5},
			{Name: "tx2", Resource: "radio2", Delay: 4, Power: 5},
		},
		Pmax: 8, // both at once would draw 10 W
	}
	res, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("finish: %d s\n", res.Finish())
	fmt.Printf("peak: %.0f W\n", res.Peak())
	// Output:
	// finish: 8 s
	// peak: 5 W
}

// ExampleProblem_Window shows the min/max separation constraint that
// subsumes deadlines and precedences: heating must complete 5..50 s
// before the motors run (the Mars rover's Table 1 constraint).
func ExampleProblem_Window() {
	p := &impacct.Problem{Name: "heater"}
	p.AddTask(impacct.Task{Name: "heat", Resource: "H1", Delay: 5, Power: 7.6})
	p.AddTask(impacct.Task{Name: "steer", Resource: "motors", Delay: 5, Power: 4.3})
	p.Window("heat", "steer", 5, 50)

	res, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sep := res.Schedule.Start[1] - res.Schedule.Start[0]
	fmt.Printf("steering starts %d s after heating\n", sep)
	// Output:
	// steering starts 5 s after heating
}

// ExampleParseSpecString parses the textual problem format.
func ExampleParseSpecString() {
	spec := `
problem demo
pmax 10
task a cpu 2 4
task b cpu 3 4
precede a b
`
	p, err := impacct.ParseSpecString(spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(p.Name, len(p.Tasks), "tasks")
	// Output:
	// demo 2 tasks
}

// ExampleVerify shows the independent acceptance check.
func ExampleVerify() {
	p := &impacct.Problem{
		Name:  "check",
		Tasks: []impacct.Task{{Name: "t", Resource: "R", Delay: 3, Power: 2}},
		Pmax:  10,
	}
	good := impacct.Schedule{Start: []impacct.Time{0}}
	fmt.Println("valid:", impacct.Verify(p, good).OK())
	bad := impacct.Schedule{Start: []impacct.Time{-2}}
	fmt.Println("valid:", impacct.Verify(p, bad).OK())
	// Output:
	// valid: true
	// valid: false
}

// ExampleResult_EnergyCost shows the free-vs-costly energy split: with
// Pmin at the free solar level, only consumption above it costs
// battery energy.
func ExampleResult_EnergyCost() {
	p := &impacct.Problem{
		Name:  "solar",
		Tasks: []impacct.Task{{Name: "work", Resource: "R", Delay: 10, Power: 8}},
		Pmax:  20,
		Pmin:  5, // 5 W of free solar power
	}
	res, err := impacct.Run(p, impacct.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("total: %.0f J, from battery: %.0f J\n",
		res.Profile.Energy(), res.EnergyCost())
	// Output:
	// total: 80 J, from battery: 30 J
}
