package impacct

import (
	"repro/internal/baseline"
	"repro/internal/corners"
	"repro/internal/editor"
	"repro/internal/exact"
	"repro/internal/exec"
	"repro/internal/shape"
	"repro/internal/verify"
)

// Independent verification (see internal/verify).
type (
	// VerifyReport is the outcome of an independent schedule check.
	VerifyReport = verify.Report
	// Violation is one independently detected schedule defect.
	Violation = verify.Violation
)

// Verify independently re-checks a schedule against its problem using
// algorithms disjoint from the scheduler's own (pairwise scans,
// per-second sampling). Use it as an acceptance gate before deploying
// a schedule.
func Verify(p *Problem, s Schedule) VerifyReport { return verify.Check(p, s) }

// VerifyAssigned is Verify for heterogeneous problems: the machine and
// DVS choices in a are applied to the tasks before checking, and
// machine exclusivity is checked pairwise. A nil assignment is exactly
// Verify.
func VerifyAssigned(p *Problem, s Schedule, a Assignment) VerifyReport {
	return verify.CheckAssigned(p, s, a)
}

// Interactive editing (see internal/editor).

// Session is an interactive scheduling session: move and lock task
// bins as in the paper's power-aware Gantt chart tool, re-run the
// automated pipeline around the locks, and undo/redo freely.
type Session = editor.Session

// NewSession starts an interactive session from the automated
// pipeline's schedule.
func NewSession(p *Problem, opts Options) (*Session, error) { return editor.New(p, opts) }

// NewSessionWith starts an interactive session from an existing valid
// schedule.
func NewSessionWith(p *Problem, s Schedule, opts Options) (*Session, error) {
	return editor.NewWithSchedule(p, s, opts)
}

// Corner analysis (see internal/corners).
type (
	// TriPower is a (min, typical, max) power value.
	TriPower = corners.TriPower
	// CornerModel assigns power corners to a problem's tasks.
	CornerModel = corners.Model
	// CornerReport evaluates one conservative schedule at all corners.
	CornerReport = corners.Report
)

// Corners.
const (
	CornerMin = corners.Min
	CornerTyp = corners.Typ
	CornerMax = corners.Max
)

// ConservativeCorners schedules once at the max power corner and
// evaluates the schedule under every corner.
func ConservativeCorners(p *Problem, m CornerModel, opts Options) (CornerReport, error) {
	return corners.Conservative(p, m, opts)
}

// PerCornerSchedules schedules the problem independently at each
// corner (the power-aware, one-schedule-per-condition approach).
func PerCornerSchedules(p *Problem, m CornerModel, opts Options) ([]corners.PerCornerResult, error) {
	return corners.PerCorner(p, m, opts)
}

// Execution replay (see internal/exec).
type (
	// ExecReport is the outcome of replaying a schedule against live
	// power sources.
	ExecReport = exec.Report
	// ExecEvent is one entry of an execution trace.
	ExecEvent = exec.Event
)

// TraceSchedule derives the ordered start/finish event log of a
// schedule.
func TraceSchedule(p *Problem, s Schedule) []ExecEvent { return exec.Trace(p, s) }

// Execute replays the schedule against a time-varying supply starting
// at the given mission time, drawing battery energy as needed.
func Execute(p *Problem, s Schedule, sup Supply, bat *Battery, offset Time) (ExecReport, error) {
	return exec.Execute(p, s, sup, bat, offset)
}

// Exact reference solving (see internal/exact).
type (
	// ExactConfig bounds the exhaustive search.
	ExactConfig = exact.Config
	// ExactSolution is a provably optimal (or best-found) schedule.
	ExactSolution = exact.Solution
)

// SolveExactMinFinish finds the minimum-makespan schedule of a small
// instance by branch-and-bound.
func SolveExactMinFinish(p *Problem, cfg ExactConfig) (ExactSolution, error) {
	return exact.Solve(p, exact.MinFinish, cfg)
}

// SolveExactMinCost finds the minimum-energy-cost schedule of a small
// instance by branch-and-bound.
func SolveExactMinCost(p *Problem, cfg ExactConfig) (ExactSolution, error) {
	return exact.Solve(p, exact.MinEnergyCost, cfg)
}

// Time-varying task power (see internal/shape).
type (
	// PowerShape is a piecewise-constant power curve over a task's
	// execution (e.g. motor inrush then steady draw).
	PowerShape = shape.Shape
	// ShapedProblem pairs a problem with per-task power shapes.
	ShapedProblem = shape.Problem
	// ShapedResult is a conservative schedule evaluated under the true
	// shapes.
	ShapedResult = shape.Result
)

// ConstantShape builds a flat power shape.
func ConstantShape(d Time, p float64) PowerShape { return shape.Constant(d, p) }

// InrushShape builds a surge-then-steady motor shape.
func InrushShape(d, inrushDur Time, inrushPower, steady float64) PowerShape {
	return shape.Inrush(d, inrushDur, inrushPower, steady)
}

// RunShaped schedules a shaped problem conservatively (peak-power
// lowering) and evaluates it under the true shapes.
func RunShaped(sp *ShapedProblem, opts Options) (*ShapedResult, error) {
	return shape.Run(sp, opts)
}

// ListSchedule runs the conventional greedy power-constrained list
// scheduler — the algorithmic baseline the pipeline is compared
// against (see internal/baseline).
func ListSchedule(p *Problem, horizon Time) (Schedule, error) {
	return baseline.ListSchedule(p, horizon)
}
