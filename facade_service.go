package impacct

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/service"
	"repro/internal/store"
)

// Scheduling service layer (see internal/service): a concurrency-safe
// front for the pipeline with a content-addressed result cache,
// singleflight deduplication, a bounded worker pool, and expvar
// metrics.
type (
	// SchedulingService caches and deduplicates pipeline runs.
	SchedulingService = service.Service
	// ServiceConfig tunes cache capacity and pool size.
	ServiceConfig = service.Config
	// ServiceStats is a metrics snapshot (the /stats JSON shape).
	ServiceStats = service.Stats
	// PipelineStage selects how much of the pipeline a request runs.
	PipelineStage = service.Stage
	// WorkerPool is a bounded worker pool for batch evaluation.
	WorkerPool = service.Pool
	// ResultStore is a persistent content-addressed result store (an
	// append-log with crash-safe recovery); wire one into
	// ServiceConfig.Store to back the in-memory cache with a
	// second-level tier that survives restarts.
	ResultStore = store.Store
	// ResultStoreOptions tunes a ResultStore's bounds and compaction.
	ResultStoreOptions = store.Options
)

// Pipeline stages for SchedulingService requests.
const (
	StageTiming   = service.StageTiming
	StageMaxPower = service.StageMaxPower
	StageMinPower = service.StageMinPower
)

// Resilience errors surfaced by the service layer. Detect with
// errors.Is.
var (
	// ErrOverloaded: admission control shed the request (back off and
	// retry; the web layer answers 429 with Retry-After).
	ErrOverloaded = service.ErrOverloaded
	// ErrInternal: a pipeline compute panicked and was contained at the
	// service boundary; the stack went to the metrics, not the caller.
	ErrInternal = service.ErrInternal
)

// NewService creates a scheduling service.
func NewService(cfg ServiceConfig) *SchedulingService { return service.New(cfg) }

// OpenResultStore opens (or creates) a persistent result store at
// path, recovering from a torn tail if the last process crashed
// mid-write. Close it after draining the service that uses it.
func OpenResultStore(path string, opts ResultStoreOptions) (*ResultStore, error) {
	return store.Open(path, opts)
}

// SharedService returns the process-wide default scheduling service.
func SharedService() *SchedulingService { return service.Shared() }

// NewWorkerPool creates a pool running at most workers tasks at once
// (<= 0 selects GOMAXPROCS).
func NewWorkerPool(workers int) *WorkerPool { return service.NewPool(workers) }

// SweepPmaxParallel is SweepPmax evaluated concurrently through a
// scheduling service (nil selects SharedService): points run on the
// service's worker pool and their schedules are cached
// content-addressed, so overlapping re-sweeps only compute new points.
func SweepPmaxParallel(p *Problem, budgets []float64, opts Options, svc *SchedulingService) []DesignPoint {
	return analysis.SweepPmaxParallel(p, budgets, opts, svc)
}

// SweepPmaxParallelCtx is SweepPmaxParallel under a context: canceled
// or never-started points carry the context's error in their Err field.
func SweepPmaxParallelCtx(ctx context.Context, p *Problem, budgets []float64, opts Options, svc *SchedulingService) []DesignPoint {
	return analysis.SweepPmaxParallelCtx(ctx, p, budgets, opts, svc)
}
