// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the heuristic choices and scaling runs
// on synthetic constraint graphs. Each benchmark reports the headline
// quantities of its artifact via b.ReportMetric (tau_s, cost_J,
// util_pct), so `go test -bench . -benchmem` reproduces the paper's
// rows alongside the runtime costs; the cmd/rover and cmd/mission tools
// print the full tables.
package impacct_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/mission"
	"repro/internal/paperex"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/schedule"
	"repro/internal/service"
)

func reportResult(b *testing.B, r *impacct.Result) {
	b.Helper()
	b.ReportMetric(float64(r.Finish()), "tau_s")
	b.ReportMetric(r.EnergyCost(), "cost_J")
	b.ReportMetric(100*r.Utilization(), "util_pct")
}

// BenchmarkFig2TimingSchedule builds the time-valid schedule of Fig. 2
// for the nine-task example: timing constraints only, power spikes
// still present.
func BenchmarkFig2TimingSchedule(b *testing.B) {
	var r *impacct.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = impacct.Timing(paperex.Nine(), impacct.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, r)
	b.ReportMetric(float64(len(r.Profile.Spikes(paperex.Pmax))), "spikes")
}

// BenchmarkFig5MaxPower removes the spike with the max-power scheduler
// (Fig. 5): a valid schedule.
func BenchmarkFig5MaxPower(b *testing.B) {
	var r *impacct.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = impacct.MaxPower(paperex.Nine(), impacct.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, r)
}

// BenchmarkFig7MinPower improves utilization with the min-power
// scheduler (Fig. 7): the complete pipeline.
func BenchmarkFig7MinPower(b *testing.B) {
	var r *impacct.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = impacct.Run(paperex.Nine(), impacct.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, r)
	b.ReportMetric(r.Peak(), "needs_pmax_W")
	b.ReportMetric(r.Profile.Floor(), "fullutil_pmin_W")
}

// BenchmarkFig8RoverGraph constructs and compiles the rover's
// constraint graph (Fig. 8).
func BenchmarkFig8RoverGraph(b *testing.B) {
	var comp *schedule.Compiled
	for i := 0; i < b.N; i++ {
		p := rover.BuildIteration(rover.Typical, rover.Cold)
		var err error
		comp, err = schedule.Compile(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(comp.NumTasks()), "tasks")
	b.ReportMetric(float64(comp.Base.NumEdges()), "edges")
}

// benchRoverCase is shared by the Fig. 9-11 benchmarks: the full
// pipeline on one rover iteration.
func benchRoverCase(b *testing.B, c rover.Case, kind rover.IterationKind) {
	var r *impacct.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = sched.Run(rover.BuildIteration(c, kind), sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, r)
}

// BenchmarkFig9BestCase schedules the unrolled best case of Fig. 9
// (cold iteration with inserted pre-heat tasks, 24.9 W budget).
func BenchmarkFig9BestCase(b *testing.B) { benchRoverCase(b, rover.Best, rover.ColdPreheat) }

// BenchmarkFig9BestCaseSteady schedules the repeating warm iteration
// whose cost Table 3 reports as the best case's "2nd" figure.
func BenchmarkFig9BestCaseSteady(b *testing.B) { benchRoverCase(b, rover.Best, rover.Warm) }

// BenchmarkFig10TypicalCase schedules the typical case of Fig. 10
// (22 W budget; some heating serialized, 60 s).
func BenchmarkFig10TypicalCase(b *testing.B) { benchRoverCase(b, rover.Typical, rover.Cold) }

// BenchmarkFig11WorstCase schedules the worst case of Fig. 11 (19 W
// budget; fully serialized, 75 s, identical to the JPL baseline).
func BenchmarkFig11WorstCase(b *testing.B) { benchRoverCase(b, rover.Worst, rover.Cold) }

// BenchmarkTable3 evaluates all six Table 3 cells: the JPL baseline and
// the power-aware schedule in each environmental case.
func BenchmarkTable3(b *testing.B) {
	for _, c := range rover.Cases {
		c := c
		b.Run("jpl-"+c.String(), func(b *testing.B) {
			var m rover.Metrics
			for i := 0; i < b.N; i++ {
				p, s := rover.JPL(c)
				m = rover.Measure(p, s)
			}
			b.ReportMetric(float64(m.Finish), "tau_s")
			b.ReportMetric(m.EnergyCost, "cost_J")
			b.ReportMetric(100*m.Utilization, "util_pct")
		})
		b.Run("power-aware-"+c.String(), func(b *testing.B) {
			benchRoverCase(b, c, rover.Cold)
		})
	}
}

// BenchmarkTable4 runs the complete 48-step mission scenario for both
// policies and reports the paper's improvement percentages.
func BenchmarkTable4(b *testing.B) {
	var jpl, pa mission.Report
	for i := 0; i < b.N; i++ {
		var err error
		jpl, err = mission.Simulate(mission.Config{
			TargetSteps: 48, Phases: mission.PaperScenario(), Policy: &mission.JPLPolicy{},
		})
		if err != nil {
			b.Fatal(err)
		}
		pa, err = mission.Simulate(mission.Config{
			TargetSteps: 48, Phases: mission.PaperScenario(), Policy: &mission.PowerAwarePolicy{},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(jpl.TotalSeconds), "jpl_s")
	b.ReportMetric(float64(pa.TotalSeconds), "pa_s")
	b.ReportMetric(jpl.TotalCost, "jpl_J")
	b.ReportMetric(pa.TotalCost, "pa_J")
	b.ReportMetric(100*mission.TimeImprovement(jpl, pa), "time_imp_pct")
	b.ReportMetric(100*mission.EnergyImprovement(jpl, pa), "energy_imp_pct")
}

// BenchmarkAblationScanOrder isolates the min-power gap-visit order
// (paper section 5.3 discusses scanning "in various orders").
func BenchmarkAblationScanOrder(b *testing.B) {
	orders := map[string][]impacct.ScanOrder{
		"forward": {impacct.ScanForward},
		"reverse": {impacct.ScanReverse},
		"random":  {impacct.ScanRandom},
		"all":     {impacct.ScanForward, impacct.ScanReverse, impacct.ScanRandom},
	}
	for _, name := range []string{"forward", "reverse", "random", "all"} {
		b.Run(name, func(b *testing.B) {
			var r *impacct.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = impacct.Run(paperex.Nine(), impacct.Options{ScanOrders: orders[name]})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportResult(b, r)
		})
	}
}

// BenchmarkAblationSlotChoice isolates the slot heuristic used when
// moving a task into a power gap.
func BenchmarkAblationSlotChoice(b *testing.B) {
	slots := map[string][]impacct.SlotChoice{
		"start-at-gap":      {impacct.SlotStartAtGap},
		"finish-at-gap-end": {impacct.SlotFinishAtGapEnd},
		"random":            {impacct.SlotRandom},
		"all":               {impacct.SlotStartAtGap, impacct.SlotFinishAtGapEnd, impacct.SlotRandom},
	}
	for _, name := range []string{"start-at-gap", "finish-at-gap-end", "random", "all"} {
		b.Run(name, func(b *testing.B) {
			var r *impacct.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = impacct.Run(paperex.Nine(), impacct.Options{SlotChoices: slots[name]})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportResult(b, r)
		})
	}
}

// BenchmarkAblationLocks toggles the lock-the-remaining-tasks heuristic
// of the max-power scheduler, which the paper argues reduces the
// scheduler's computation.
func BenchmarkAblationLocks(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "locks-on"
		if disabled {
			name = "locks-off"
		}
		b.Run(name, func(b *testing.B) {
			var r *impacct.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = sched.Run(rover.BuildIteration(rover.Worst, rover.Cold),
					sched.Options{DisableLocks: disabled})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportResult(b, r)
			b.ReportMetric(float64(r.Stats.Backtracks), "backtracks")
		})
	}
}

// BenchmarkScaling measures pipeline runtime against problem size on
// random layered constraint graphs.
func BenchmarkScaling(b *testing.B) {
	for _, n := range []int{10, 25, 50, 100, 200} {
		b.Run(fmt.Sprintf("tasks-%d", n), func(b *testing.B) {
			p := analysis.Generate(analysis.GenConfig{Tasks: n, Seed: 42})
			b.ResetTimer()
			var r *impacct.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = impacct.Run(p.Clone(), impacct.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportResult(b, r)
		})
	}
}

// BenchmarkServiceCached measures a /schedule-shaped request served
// from the scheduling service's content-addressed cache on the rover
// problem. Compare against BenchmarkServiceUncached (the same request
// recomputed from scratch): the cached path is a hash plus a map
// lookup, several orders of magnitude faster.
func BenchmarkServiceCached(b *testing.B) {
	svc := service.New(service.Config{})
	p := rover.BuildIteration(rover.Typical, rover.Cold)
	r, err := svc.Schedule(p, sched.Options{}, service.StageMinPower)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = svc.Schedule(p, sched.Options{}, service.StageMinPower)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, r)
	b.ReportMetric(float64(svc.Stats().Hits), "cache_hits")
}

// BenchmarkServiceUncached is the baseline for BenchmarkServiceCached:
// every iteration runs the full pipeline on the same rover problem.
func BenchmarkServiceUncached(b *testing.B) {
	p := rover.BuildIteration(rover.Typical, rover.Cold)
	var r *impacct.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = sched.Run(p, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportResult(b, r)
}

// BenchmarkProfileBuild measures the power-profile sweep on a large
// schedule, the inner loop of every heuristic evaluation.
func BenchmarkProfileBuild(b *testing.B) {
	p := analysis.Generate(analysis.GenConfig{Tasks: 200, Seed: 7})
	r, err := impacct.Timing(p, impacct.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof := impacct.BuildProfile(p.Tasks, r.Schedule, p.BasePower)
		if prof.Duration() == 0 {
			b.Fatal("empty profile")
		}
	}
}
