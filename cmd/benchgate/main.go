// Command benchgate compares two `go test -bench` outputs (typically
// the PR head and its merge-base) and exits non-zero when any
// benchmark matching -pattern regressed by more than -max-regress in
// ns/op. CI runs it after benchstat so the human-readable diff is
// archived either way; benchgate is the machine verdict.
//
// Benchmarks are matched by name with the -cpu suffix stripped
// (BenchmarkPipeline200-8 and BenchmarkPipeline200-4 compare). With
// -count > 1 the minimum ns/op per name is used: the minimum is the
// run least disturbed by scheduler noise, which keeps the gate from
// flagging phantom regressions on shared CI machines.
//
// A base file with no matching benchmarks (the merge-base predates the
// benchmark suite) passes with a notice, so the gate can be enabled in
// the same PR that introduces the benchmarks.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	baseFile := flag.String("base", "", "bench output of the merge-base")
	headFile := flag.String("head", "", "bench output of the PR head")
	pattern := flag.String("pattern", "^BenchmarkPipeline", "regexp of benchmark names to gate")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed ns/op regression (0.15 = +15%)")
	flag.Parse()
	if *baseFile == "" || *headFile == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -pattern: %v\n", err)
		os.Exit(2)
	}

	base, err := parseFile(*baseFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	head, err := parseFile(*headFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	verdicts, failed := gate(base, head, re, *maxRegress)
	if len(verdicts) == 0 {
		fmt.Printf("benchgate: no benchmarks matching %q in base output; nothing to gate\n", *pattern)
		return
	}
	fmt.Printf("%-32s %14s %14s %8s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, v := range verdicts {
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%% %s\n", v.name, v.base, v.head, v.delta*100, v.mark)
	}
	if failed {
		fmt.Printf("benchgate: FAIL — regression above +%.0f%%\n", *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

type verdict struct {
	name       string
	base, head float64
	delta      float64
	mark       string
}

// gate compares every base benchmark matching re against the head run.
// A matching benchmark missing from head fails the gate (a silently
// deleted benchmark must not disable its own regression check).
func gate(base, head map[string]float64, re *regexp.Regexp, maxRegress float64) ([]verdict, bool) {
	var names []string
	for name := range base {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sortStrings(names)
	var out []verdict
	failed := false
	for _, name := range names {
		b := base[name]
		h, ok := head[name]
		if !ok {
			out = append(out, verdict{name: name, base: b, head: 0, delta: 0, mark: "MISSING"})
			failed = true
			continue
		}
		delta := h/b - 1
		mark := ""
		if delta > maxRegress {
			mark = "REGRESSION"
			failed = true
		}
		out = append(out, verdict{name: name, base: b, head: h, delta: delta, mark: mark})
	}
	return out, failed
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || ns < prev {
			out[name] = ns
		}
	}
	return out, sc.Err()
}

// cpuSuffix strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseLine extracts (name, ns/op) from one `go test -bench` result
// line, e.g. "BenchmarkPipeline200-8   3   7606484 ns/op   ...".
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, false
		}
		return cpuSuffix.ReplaceAllString(fields[0], ""), ns, true
	}
	return "", 0, false
}
