// Command benchgate compares two `go test -bench` outputs (typically
// the PR head and its merge-base) and exits non-zero when any
// benchmark matching -pattern regressed by more than -max-regress in
// ns/op or more than -max-alloc-regress in allocs/op. CI runs it after
// benchstat so the human-readable diff is archived either way;
// benchgate is the machine verdict.
//
// The allocation gate is what locks in the flat-memory scheduler core:
// ns/op on a shared CI machine is noisy, but allocs/op is exact and
// deterministic, so an accidental per-probe allocation on the hot path
// shows up as a precise integer jump even when the timing gate would
// have absorbed it in noise.
//
// Benchmarks are matched by name with the -cpu suffix stripped
// (BenchmarkPipeline200-8 and BenchmarkPipeline200-4 compare). With
// -count > 1 the minimum per name is used for both metrics: the
// minimum is the run least disturbed by scheduler noise, which keeps
// the gate from flagging phantom regressions on shared CI machines.
//
// A base file with no matching benchmarks (the merge-base predates the
// benchmark suite) passes with a notice, so the gate can be enabled in
// the same PR that introduces the benchmarks. A benchmark that stopped
// reporting allocations skips the allocation gate only when the base
// did not report them either.
//
// Beyond the base-vs-head regression gates, -min-speedup (with
// -speedup-slow / -speedup-fast) asserts an absolute property of the
// head run alone: the fast variant of a benchmark pair must beat the
// slow one by at least the given ratio — how CI locks in that the
// pooled campaign engine actually scales. -min-cpus keeps that gate
// advisory on machines too narrow to demonstrate parallelism.
//
// -json replaces the table with a machine-readable report on stdout
// (the exit code is unchanged), for archiving the verdict as a CI
// artifact next to the benchstat diff.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

func main() {
	baseFile := flag.String("base", "", "bench output of the merge-base")
	headFile := flag.String("head", "", "bench output of the PR head")
	pattern := flag.String("pattern", "^BenchmarkPipeline", "regexp of benchmark names to gate")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed ns/op regression (0.15 = +15%)")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.10, "maximum allowed allocs/op regression (0.10 = +10%); negative disables the allocation gate")
	speedupSlow := flag.String("speedup-slow", "", "slow-variant benchmark name (cpu suffix stripped) for the head speedup gate")
	speedupFast := flag.String("speedup-fast", "", "fast-variant benchmark name for the head speedup gate")
	minSpeedup := flag.Float64("min-speedup", 0, "minimum head ns/op ratio slow/fast (0 disables the speedup gate)")
	minCPUs := flag.Int("min-cpus", 0, "enforce -min-speedup only on machines with at least this many CPUs (the ratio is meaningless on boxes too narrow to parallelize)")
	jsonOut := flag.Bool("json", false, "emit the verdicts as JSON on stdout instead of a table")
	flag.Parse()
	if *baseFile == "" || *headFile == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -pattern: %v\n", err)
		os.Exit(2)
	}

	base, err := parseFile(*baseFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	head, err := parseFile(*headFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	verdicts, failed := gate(base, head, re, *maxRegress, *maxAllocRegress)
	var sv *speedupVerdict
	if *minSpeedup > 0 {
		sv = speedupGate(head, *speedupSlow, *speedupFast, *minSpeedup, runtime.NumCPU(), *minCPUs)
		if sv.Failed {
			failed = true
		}
	}
	if *jsonOut {
		report := struct {
			Pattern         string          `json:"pattern"`
			MaxRegress      float64         `json:"max_regress"`
			MaxAllocRegress float64         `json:"max_alloc_regress"`
			Failed          bool            `json:"failed"`
			Verdicts        []verdict       `json:"verdicts"`
			Speedup         *speedupVerdict `json:"speedup,omitempty"`
		}{*pattern, *maxRegress, *maxAllocRegress, failed, verdicts, sv}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	if len(verdicts) == 0 {
		fmt.Printf("benchgate: no benchmarks matching %q in base output; nothing to gate\n", *pattern)
		return
	}
	fmt.Printf("%-32s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "base ns/op", "head ns/op", "delta", "base allocs", "head allocs", "delta")
	for _, v := range verdicts {
		alloc := fmt.Sprintf("%12s %12s %8s", "-", "-", "")
		if v.BaseAllocs >= 0 && v.HeadAllocs >= 0 {
			alloc = fmt.Sprintf("%12.0f %12.0f %+7.1f%%", v.BaseAllocs, v.HeadAllocs, v.AllocDelta*100)
		}
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%% %s %s\n", v.Name, v.BaseNs, v.HeadNs, v.NsDelta*100, alloc, v.Mark)
	}
	if sv != nil {
		fmt.Println("benchgate:", sv.Note)
	}
	if failed {
		fmt.Printf("benchgate: FAIL — regression above +%.0f%% ns/op or +%.0f%% allocs/op\n",
			*maxRegress*100, *maxAllocRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// sample is one benchmark's metrics, minimized across repeated runs.
// allocs is -1 when the run did not report allocations.
type sample struct {
	ns     float64
	allocs float64
}

// speedupVerdict is the head-only parallel-speedup gate's outcome: the
// fast variant of a benchmark pair must beat the slow one by at least
// -min-speedup. Unlike the regression gates it compares head against
// head, so it locks an absolute property of the PR (the pooled
// campaign actually scales), not a delta against the base.
type speedupVerdict struct {
	Slow     string  `json:"slow"`
	Fast     string  `json:"fast"`
	Min      float64 `json:"min"`
	Ratio    float64 `json:"ratio,omitempty"`
	Enforced bool    `json:"enforced"`
	Failed   bool    `json:"failed"`
	Note     string  `json:"note"`
}

// speedupGate checks head[slow].ns / head[fast].ns >= min. On machines
// with fewer than minCPUs CPUs the gate records the ratio but does not
// enforce it: a 1- or 2-core box cannot demonstrate pool scaling, and
// failing there would make the gate unrunnable locally. Missing
// benchmarks fail even unenforced — the pair must exist so the gate
// cannot be disabled by deleting its inputs.
func speedupGate(head map[string]sample, slow, fast string, min float64, cpus, minCPUs int) *speedupVerdict {
	sv := &speedupVerdict{Slow: slow, Fast: fast, Min: min, Enforced: cpus >= minCPUs}
	s, okS := head[slow]
	f, okF := head[fast]
	switch {
	case slow == "" || fast == "":
		sv.Failed = true
		sv.Note = "speedup gate needs -speedup-slow and -speedup-fast"
	case !okS || !okF:
		sv.Failed = true
		sv.Note = fmt.Sprintf("speedup gate: head output is missing %q or %q", slow, fast)
	default:
		sv.Ratio = s.ns / f.ns
		switch {
		case !sv.Enforced:
			sv.Note = fmt.Sprintf("speedup %s/%s = %.2fx (want >= %.2fx; not enforced, %d CPUs < %d)",
				slow, fast, sv.Ratio, min, cpus, minCPUs)
		case sv.Ratio < min:
			sv.Failed = true
			sv.Note = fmt.Sprintf("SPEEDUP FAIL: %s/%s = %.2fx, want >= %.2fx", slow, fast, sv.Ratio, min)
		default:
			sv.Note = fmt.Sprintf("speedup %s/%s = %.2fx (>= %.2fx)", slow, fast, sv.Ratio, min)
		}
	}
	return sv
}

type verdict struct {
	Name       string  `json:"name"`
	BaseNs     float64 `json:"base_ns_per_op"`
	HeadNs     float64 `json:"head_ns_per_op"`
	NsDelta    float64 `json:"ns_delta"`
	BaseAllocs float64 `json:"base_allocs_per_op"` // -1 when unreported
	HeadAllocs float64 `json:"head_allocs_per_op"` // -1 when unreported
	AllocDelta float64 `json:"alloc_delta"`
	Mark       string  `json:"mark,omitempty"`
}

// gate compares every base benchmark matching re against the head run.
// A matching benchmark missing from head fails the gate (a silently
// deleted benchmark must not disable its own regression check), and so
// does a benchmark that reported allocations in base but not in head
// (dropping ReportAllocs must not disable the allocation gate).
func gate(base, head map[string]sample, re *regexp.Regexp, maxRegress, maxAllocRegress float64) ([]verdict, bool) {
	var names []string
	for name := range base {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sortStrings(names)
	var out []verdict
	failed := false
	for _, name := range names {
		b := base[name]
		h, ok := head[name]
		if !ok {
			out = append(out, verdict{Name: name, BaseNs: b.ns, BaseAllocs: b.allocs, HeadAllocs: -1, Mark: "MISSING"})
			failed = true
			continue
		}
		v := verdict{
			Name:   name,
			BaseNs: b.ns, HeadNs: h.ns, NsDelta: h.ns/b.ns - 1,
			BaseAllocs: b.allocs, HeadAllocs: h.allocs,
		}
		if v.NsDelta > maxRegress {
			v.Mark = "REGRESSION"
			failed = true
		}
		if maxAllocRegress >= 0 && b.allocs >= 0 {
			switch {
			case h.allocs < 0:
				v.Mark = "NO ALLOCS"
				failed = true
			case b.allocs == 0:
				// A zero-alloc benchmark must stay zero-alloc: any
				// relative threshold on a zero base is meaningless.
				if h.allocs > 0 {
					v.Mark = "ALLOC REGRESSION"
					failed = true
				}
			default:
				v.AllocDelta = h.allocs/b.allocs - 1
				if v.AllocDelta > maxAllocRegress {
					v.Mark = "ALLOC REGRESSION"
					failed = true
				}
			}
		}
		out = append(out, v)
	}
	return out, failed
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func parseFile(path string) (map[string]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]sample{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := out[name]
		if !seen {
			out[name] = s
			continue
		}
		// Minimize each metric independently across repeated runs.
		if s.ns < prev.ns {
			prev.ns = s.ns
		}
		if s.allocs >= 0 && (prev.allocs < 0 || s.allocs < prev.allocs) {
			prev.allocs = s.allocs
		}
		out[name] = prev
	}
	return out, sc.Err()
}

// cpuSuffix strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseLine extracts the metrics from one `go test -bench` result
// line, e.g. "BenchmarkPipeline200-8   3   7606484 ns/op   5953128 B/op   19354 allocs/op".
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	s := sample{ns: -1, allocs: -1}
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.ns = v
		case "allocs/op":
			s.allocs = v
		}
	}
	if s.ns < 0 {
		return "", sample{}, false
	}
	return cpuSuffix.ReplaceAllString(fields[0], ""), s, true
}
