package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, s, ok := parseLine("BenchmarkPipeline200-8   \t       3\t   7606484 ns/op\t 5953128 B/op\t   19354 allocs/op")
	if !ok || name != "BenchmarkPipeline200" || s.ns != 7606484 || s.allocs != 19354 {
		t.Fatalf("got (%q, %+v, %v)", name, s, ok)
	}
	if _, _, ok := parseLine("goos: linux"); ok {
		t.Error("header line parsed as a benchmark")
	}
	if _, _, ok := parseLine("ok  \trepro/internal/benchkit\t8.014s"); ok {
		t.Error("trailer line parsed as a benchmark")
	}
	// Sub-benchmark names and fractional ns/op survive; a line without
	// allocation reporting marks allocs as unreported.
	name, s, ok = parseLine("BenchmarkCampaign/pooled-4-8  5  583.5 ns/op")
	if !ok || name != "BenchmarkCampaign/pooled-4" || s.ns != 583.5 || s.allocs != -1 {
		t.Fatalf("got (%q, %+v, %v)", name, s, ok)
	}
}

func TestGate(t *testing.T) {
	re := regexp.MustCompile(`^BenchmarkPipeline`)
	base := map[string]sample{
		"BenchmarkPipeline50":  {ns: 1000, allocs: 100},
		"BenchmarkPipeline200": {ns: 2000, allocs: 200},
		"BenchmarkOther":       {ns: 1, allocs: 1},
	}

	// Within tolerance (+10% ns, +5% allocs) passes; unmatched names
	// are ignored.
	head := map[string]sample{
		"BenchmarkPipeline50":  {ns: 1100, allocs: 105},
		"BenchmarkPipeline200": {ns: 1900, allocs: 200},
		"BenchmarkOther":       {ns: 99, allocs: 9999},
	}
	if v, failed := gate(base, head, re, 0.15, 0.10); failed || len(v) != 2 {
		t.Fatalf("tolerated regression failed the gate: %+v", v)
	}

	// +20% ns/op on one benchmark fails.
	head["BenchmarkPipeline200"] = sample{ns: 2400, allocs: 200}
	if _, failed := gate(base, head, re, 0.15, 0.10); !failed {
		t.Fatal("+20% ns/op regression passed the gate")
	}

	// +20% allocs/op with flat ns/op fails the allocation gate.
	head["BenchmarkPipeline200"] = sample{ns: 2000, allocs: 240}
	if _, failed := gate(base, head, re, 0.15, 0.10); !failed {
		t.Fatal("+20% allocs/op regression passed the gate")
	}
	// ...unless the allocation gate is disabled.
	if _, failed := gate(base, head, re, 0.15, -1); failed {
		t.Fatal("alloc regression failed the gate with the alloc gate disabled")
	}

	// Dropping allocation reporting from head fails (the gate must not
	// be disabled by removing ReportAllocs).
	head["BenchmarkPipeline200"] = sample{ns: 2000, allocs: -1}
	if _, failed := gate(base, head, re, 0.15, 0.10); !failed {
		t.Fatal("missing head allocs passed the gate")
	}
	// A base without allocation reporting gates ns/op only.
	base["BenchmarkPipeline200"] = sample{ns: 2000, allocs: -1}
	if _, failed := gate(base, head, re, 0.15, 0.10); failed {
		t.Fatal("alloc-free base failed the allocation gate")
	}
	base["BenchmarkPipeline200"] = sample{ns: 2000, allocs: 200}

	// A zero-alloc benchmark must stay zero-alloc.
	base["BenchmarkPipeline50"] = sample{ns: 1000, allocs: 0}
	head["BenchmarkPipeline50"] = sample{ns: 1000, allocs: 1}
	if _, failed := gate(base, head, re, 0.15, 0.10); !failed {
		t.Fatal("zero-alloc benchmark gaining an allocation passed the gate")
	}
	head["BenchmarkPipeline50"] = sample{ns: 1000, allocs: 0}
	head["BenchmarkPipeline200"] = sample{ns: 2000, allocs: 200}

	// A gated benchmark deleted from head fails.
	delete(head, "BenchmarkPipeline200")
	if _, failed := gate(base, head, re, 0.15, 0.10); !failed {
		t.Fatal("deleted benchmark passed the gate")
	}

	// No matching base benchmarks: nothing to gate, passes.
	if v, failed := gate(map[string]sample{"BenchmarkOther": {ns: 1}}, head, re, 0.15, 0.10); failed || len(v) != 0 {
		t.Fatalf("empty base did not pass cleanly: %+v", v)
	}
}

func TestParseFileMinimizesPerMetric(t *testing.T) {
	path := filepath.Join(t.TempDir(), "head.bench")
	data := "goos: linux\n" +
		"BenchmarkPipeline50-8  10  120 ns/op  900 B/op  11 allocs/op\n" +
		"BenchmarkPipeline50-8  10  100 ns/op  950 B/op  12 allocs/op\n" +
		"BenchmarkPipeline50-8  10  110 ns/op\n" +
		"ok  \trepro/internal/benchkit\t8.014s\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := out["BenchmarkPipeline50"]; got.ns != 100 || got.allocs != 11 {
		t.Fatalf("per-metric minimum not kept: %+v", got)
	}
}

func TestSpeedupGate(t *testing.T) {
	head := map[string]sample{
		"BenchmarkCampaign/sequential": {ns: 3000, allocs: 100},
		"BenchmarkCampaign/pooled-8":   {ns: 900, allocs: 100},
	}
	slow, fast := "BenchmarkCampaign/sequential", "BenchmarkCampaign/pooled-8"

	// 3.33x >= 3x on a wide-enough machine passes.
	sv := speedupGate(head, slow, fast, 3, 8, 4)
	if sv.Failed || !sv.Enforced || sv.Ratio < 3.3 || sv.Ratio > 3.4 {
		t.Fatalf("passing speedup failed: %+v", sv)
	}

	// Below the ratio fails when enforced...
	head[fast] = sample{ns: 1500, allocs: 100}
	if sv := speedupGate(head, slow, fast, 3, 8, 4); !sv.Failed {
		t.Fatalf("2x speedup passed a 3x gate: %+v", sv)
	}
	// ...but is recorded without failing on a machine too narrow to
	// demonstrate pool scaling.
	if sv := speedupGate(head, slow, fast, 3, 2, 4); sv.Failed || sv.Enforced || sv.Ratio != 2 {
		t.Fatalf("narrow-machine speedup not skipped cleanly: %+v", sv)
	}

	// A missing benchmark fails even unenforced: the gate cannot be
	// disabled by deleting its inputs.
	delete(head, fast)
	if sv := speedupGate(head, slow, fast, 3, 2, 4); !sv.Failed {
		t.Fatalf("missing fast benchmark passed: %+v", sv)
	}
	// Unset names fail loudly rather than gating nothing.
	if sv := speedupGate(head, "", "", 3, 8, 4); !sv.Failed {
		t.Fatalf("empty pair passed: %+v", sv)
	}
}
