package main

import (
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, ns, ok := parseLine("BenchmarkPipeline200-8   \t       3\t   7606484 ns/op\t 5953128 B/op\t   19354 allocs/op")
	if !ok || name != "BenchmarkPipeline200" || ns != 7606484 {
		t.Fatalf("got (%q, %v, %v)", name, ns, ok)
	}
	if _, _, ok := parseLine("goos: linux"); ok {
		t.Error("header line parsed as a benchmark")
	}
	if _, _, ok := parseLine("ok  \trepro/internal/benchkit\t8.014s"); ok {
		t.Error("trailer line parsed as a benchmark")
	}
	// Sub-benchmark names and fractional ns/op survive.
	name, ns, ok = parseLine("BenchmarkCampaign/pooled-4-8  5  583.5 ns/op")
	if !ok || name != "BenchmarkCampaign/pooled-4" || ns != 583.5 {
		t.Fatalf("got (%q, %v, %v)", name, ns, ok)
	}
}

func TestGate(t *testing.T) {
	re := regexp.MustCompile(`^BenchmarkPipeline`)
	base := map[string]float64{
		"BenchmarkPipeline50":  1000,
		"BenchmarkPipeline200": 2000,
		"BenchmarkOther":       1,
	}

	// Within tolerance (+10%) passes; unmatched names are ignored.
	head := map[string]float64{"BenchmarkPipeline50": 1100, "BenchmarkPipeline200": 1900, "BenchmarkOther": 99}
	if v, failed := gate(base, head, re, 0.15); failed || len(v) != 2 {
		t.Fatalf("tolerated regression failed the gate: %+v", v)
	}

	// +20% on one benchmark fails.
	head["BenchmarkPipeline200"] = 2400
	if _, failed := gate(base, head, re, 0.15); !failed {
		t.Fatal("+20% regression passed the gate")
	}

	// A gated benchmark deleted from head fails.
	delete(head, "BenchmarkPipeline200")
	if _, failed := gate(base, head, re, 0.15); !failed {
		t.Fatal("deleted benchmark passed the gate")
	}

	// No matching base benchmarks: nothing to gate, passes.
	if v, failed := gate(map[string]float64{"BenchmarkOther": 1}, head, re, 0.15); failed || len(v) != 0 {
		t.Fatalf("empty base did not pass cleanly: %+v", v)
	}
}
