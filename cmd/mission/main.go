// Command mission regenerates Table 4 of the paper: the 48-step travel
// scenario under falling solar power (14.9 W for 10 min, 12 W for
// 10 min, then 9 W), comparing the fixed JPL schedule against the
// power-aware schedules. The power-aware rover front-loads its work
// into the cheap phases and wins on both time and energy.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mission"
	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
)

func main() {
	var (
		stepsFlag  = flag.Int("steps", 48, "travel distance in 7 cm steps")
		seed       = flag.Int64("seed", 0, "random seed for the heuristics")
		preheatAll = flag.Bool("preheat-all", false, "extension: pre-heat unrolling in every case, not only the best case")
		capacity   = flag.Float64("battery", 0, "battery capacity in joules (0 = untracked)")
		scenario   = flag.String("scenario", "", "load the mission from a scenario file instead of the built-in Table 4 staircase")
	)
	flag.Parse()

	phases := mission.PaperScenario()
	steps := *stepsFlag
	bat := battery(*capacity)
	batPA := battery(*capacity)
	if *scenario != "" {
		sc, err := mission.ParseScenarioFile(*scenario)
		if err != nil {
			fatal(err)
		}
		phases = sc.Phases
		steps = sc.TargetSteps
		if sc.Battery != nil {
			bat = &power.Battery{Capacity: sc.Battery.Capacity, MaxPower: sc.Battery.MaxPower}
			batPA = &power.Battery{Capacity: sc.Battery.Capacity, MaxPower: sc.Battery.MaxPower}
		}
	}
	opts := sched.Options{Seed: *seed}

	jpl, err := mission.Simulate(mission.Config{
		TargetSteps: steps,
		Phases:      phases,
		Policy:      &mission.JPLPolicy{},
		Battery:     bat,
	})
	if err != nil {
		fatal(err)
	}

	pa := &mission.PowerAwarePolicy{Opts: opts}
	if *preheatAll {
		pa.Preheat = map[rover.Case]bool{rover.Best: true, rover.Typical: true, rover.Worst: true}
	}
	paRep, err := mission.Simulate(mission.Config{
		TargetSteps: steps,
		Phases:      phases,
		Policy:      pa,
		Battery:     batPA,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Table 4: mission scenario, %d steps\n", steps)
	fmt.Print(mission.FormatTable(jpl, paRep))
}

func battery(capacity float64) *power.Battery {
	if capacity == 0 {
		return nil
	}
	return &power.Battery{Capacity: capacity, MaxPower: 10}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mission:", err)
	os.Exit(1)
}
