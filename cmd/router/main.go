// Command router fronts a fleet of serve processes as one endpoint.
// It maps every request onto a backend by rendezvous-hashing the
// request's content address (problem name or spec fingerprint), so
// each backend's caches serve a stable slice of the key space;
// because the scheduling pipeline is deterministic, any backend can
// answer any request identically and routing is purely a cache-
// locality optimization — there is no replication protocol to run.
//
//	router -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Single requests (GET /schedule, GET /simulate, POST /problems,
// POST /verify) forward to the owning backend; failures walk the
// rendezvous rank order under jittered exponential backoff
// (-retries), and -hedge-after races a slow owner against the
// rank-next replica. POST /schedule/batch splits per item across
// shards and stitches the responses back in order. GET /stats
// aggregates every shard's metrics plus the router's health view.
//
// Membership is health-checked: an active prober polls each backend's
// /readyz every -probe-interval and a consecutive-failure /
// consecutive-success state machine (-fail-threshold /
// -rise-threshold) marks shards DOWN and UP; per-backend circuit
// breakers (-breaker-threshold, -breaker-cooldown) react to forward
// errors between probes. DOWN shards are skipped in rank order, so
// every router instance with the same view places keys identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		backends = flag.String("backends", "", "comma-separated backend base URLs (required)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-backend request budget")

		probeInterval = flag.Duration("probe-interval", time.Second, "active health probe period (0 disables the prober)")
		probeTimeout  = flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe budget; a timeout counts as a failure")
		probePath     = flag.String("probe-path", "/readyz", "endpoint probed on each backend")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive probe failures that mark a backend DOWN")
		riseThreshold = flag.Int("rise-threshold", 2, "consecutive probe successes that mark a DOWN backend UP")

		breakerThreshold = flag.Int("breaker-threshold", 3, "consecutive forward errors that open a backend's circuit breaker")
		breakerCooldown  = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before the half-open trial")
		retries          = flag.Int("retries", 1, "additional replicas tried after a forward failure")
		retryBackoff     = flag.Duration("retry-backoff", 10*time.Millisecond, "base of the jittered exponential retry backoff")
		hedgeAfter       = flag.Duration("hedge-after", 0, "fire the rank-next replica if the owner has not answered within this duration (0 disables tail hedging)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http header read timeout")
		readTimeout       = flag.Duration("read-timeout", 15*time.Second, "http request read timeout")
		writeTimeout      = flag.Duration("write-timeout", 120*time.Second, "http response write timeout")
		idleTimeout       = flag.Duration("idle-timeout", 120*time.Second, "http keep-alive idle timeout")
		shutdownTimeout   = flag.Duration("shutdown-timeout", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	urls := strings.Split(*backends, ",")
	rt, err := router.New(urls, router.Config{
		Client:           &http.Client{Timeout: *timeout},
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		ProbePath:        *probePath,
		FailThreshold:    *failThreshold,
		RiseThreshold:    *riseThreshold,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Retries:          *retries,
		RetryBackoff:     *retryBackoff,
		HedgeAfter:       *hedgeAfter,
	})
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	defer rt.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("routing %d backends on %s\n", len(urls), *addr)

	select {
	case err := <-errc:
		log.Fatalf("router: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain

	fmt.Println("router: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("router: http shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("router: %v", err)
	}
}
