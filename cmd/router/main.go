// Command router fronts a fleet of serve processes as one endpoint.
// It maps every request onto a backend by rendezvous-hashing the
// request's content address (problem name or spec fingerprint), so
// each backend's caches serve a stable slice of the key space;
// because the scheduling pipeline is deterministic, any backend can
// answer any request identically and routing is purely a cache-
// locality optimization — there is no replication protocol to run.
//
//	router -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Single requests (GET /schedule, GET /simulate, POST /problems,
// POST /verify) forward to the owning backend and retry once against
// the next replica if it is unreachable. POST /schedule/batch splits
// per item across shards and stitches the responses back in order.
// GET /stats aggregates every shard's metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		backends = flag.String("backends", "", "comma-separated backend base URLs (required)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-backend request budget")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http header read timeout")
		readTimeout       = flag.Duration("read-timeout", 15*time.Second, "http request read timeout")
		writeTimeout      = flag.Duration("write-timeout", 120*time.Second, "http response write timeout")
		idleTimeout       = flag.Duration("idle-timeout", 120*time.Second, "http keep-alive idle timeout")
		shutdownTimeout   = flag.Duration("shutdown-timeout", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	urls := strings.Split(*backends, ",")
	rt, err := router.New(urls, &http.Client{Timeout: *timeout})
	if err != nil {
		log.Fatalf("router: %v", err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("routing %d backends on %s\n", len(urls), *addr)

	select {
	case err := <-errc:
		log.Fatalf("router: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain

	fmt.Println("router: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("router: http shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("router: %v", err)
	}
}
