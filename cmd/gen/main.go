// Command gen emits random, feasible power-aware scheduling problems
// in the spec format, for stress testing and scaling experiments.
//
//	gen -tasks 40 -resources 5 -seed 7 -o stress.spec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/spec"
)

func main() {
	var (
		tasks     = flag.Int("tasks", 20, "number of tasks")
		resources = flag.Int("resources", 4, "number of execution resources")
		layers    = flag.Int("layers", 0, "precedence depth (0 = tasks/5)")
		maxDelay  = flag.Int("max-delay", 8, "maximum task delay in seconds")
		maxPower  = flag.Float64("max-power", 10, "maximum task power in watts")
		seed      = flag.Int64("seed", 0, "generator seed")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	p := impacct.GenerateProblem(impacct.GenConfig{
		Tasks:     *tasks,
		Resources: *resources,
		Layers:    *layers,
		MaxDelay:  *maxDelay,
		MaxPower:  *maxPower,
		Seed:      *seed,
	})
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
	text := spec.Format(p)
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
}
