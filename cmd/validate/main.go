// Command validate independently verifies a schedule against its
// problem specification: timing constraints, resource serialization,
// and the max power budget, plus re-derived metrics. The schedule is
// the JSON document emitted by `impacct -format json`.
//
//	impacct -format json problem.spec > sched.json
//	validate problem.spec sched.json
//
// Exit status 0 means the schedule is valid; 1 means violations were
// found (each printed); 2 means the inputs could not be read.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/spec"
)

func main() {
	quiet := flag.Bool("q", false, "suppress metrics output, print violations only")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: validate [-q] <spec-file> <schedule-json>")
		os.Exit(2)
	}

	prob, err := impacct.ParseSpecFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(2)
	}
	sched, err := spec.ParseScheduleJSON(prob, data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(2)
	}

	rep := impacct.Verify(prob, sched)
	for _, v := range rep.Violations {
		fmt.Println("violation:", v)
	}
	if !*quiet {
		m := rep.Metrics
		fmt.Printf("finish: %d s\npeak: %.4g W\nenergy: %.4g J\nenergy cost: %.4g J\nutilization: %.2f%%\ngap seconds: %d\n",
			m.Finish, m.Peak, m.Energy, m.EnergyCost, 100*m.Utilization, rep.GapSeconds)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
