// Command simulate runs Monte-Carlo fault-injection campaigns over a
// mission: N seeded runs, each perturbing task durations, solar
// output, and battery capacity, with online contingency rescheduling
// through the shared scheduling service whenever the replay detects a
// violation. The default mission is the paper's Table 4 rover
// staircase; -scenario loads a scenario file (including scripted
// fault windows), -spec simulates an arbitrary problem under its own
// Pmax/Pmin.
//
// The summary is deterministic: the same -n and -seed produce
// byte-identical JSON regardless of -workers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mission"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	var (
		scenario     = flag.String("scenario", "", "scenario file with phases, battery, and scripted faults (default: built-in Table 4 staircase)")
		specFile     = flag.String("spec", "", "simulate a problem spec instead of the rover mission")
		n            = flag.Int("n", 100, "number of seeded runs")
		seed         = flag.Int64("seed", 1, "campaign master seed")
		faults       = flag.String("faults", "", "fault model: comma-separated key=value overrides, or \"none\" (see internal/sim.ParseFaults)")
		workers      = flag.Int("workers", 0, "worker pool width (0 = GOMAXPROCS); does not affect results")
		jsonOut      = flag.Bool("json", false, "emit the JSON summary instead of the text report")
		deadline     = flag.Int("deadline", 0, "mission deadline in seconds (0 = 8x the nominal finish)")
		schedSeed    = flag.Int64("sched-seed", 0, "random seed for the scheduling heuristics")
		restarts     = flag.Int("restarts", 0, "restart portfolio size for every (re)schedule, including contingency rescheduling (0 = single run)")
		schedWorkers = flag.Int("sched-workers", 0, "concurrent restart workers inside each pipeline run; any value yields identical results (0 = GOMAXPROCS)")
		minSurvival  = flag.Float64("min-survival", -1, "exit nonzero when the survival rate falls below this (for CI gates)")
		progress     = flag.Duration("progress", 0, "print campaign progress to stderr at this interval (0 = off)")
	)
	flag.Parse()

	m, err := buildMission(*scenario, *specFile)
	if err != nil {
		fatal(err)
	}
	m.Deadline = *deadline
	fm, err := sim.ParseFaults(*faults)
	if err != nil {
		fatal(err)
	}

	c := sim.Campaign{
		Mission: m,
		Faults:  fm,
		Runs:    *n,
		Seed:    *seed,
		Opts:    sched.Options{Seed: *schedSeed, Restarts: *restarts, Workers: *schedWorkers},
		Svc:     service.New(service.Config{Workers: *workers}),
	}
	// Ctrl-C aborts the campaign: no partial summary is printed, since
	// it would silently skew every statistic.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *progress > 0 {
		stopProg := reportProgress(*progress, *n)
		defer stopProg()
	}
	sum, err := c.RunCtx(ctx)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		data, err := sum.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	} else {
		printSummary(sum)
	}
	if *minSurvival >= 0 && sum.SurvivalRate < *minSurvival {
		fmt.Fprintf(os.Stderr, "simulate: survival rate %.3f below required %.3f\n", sum.SurvivalRate, *minSurvival)
		os.Exit(1)
	}
}

func buildMission(scenario, specFile string) (sim.Mission, error) {
	switch {
	case scenario != "" && specFile != "":
		return sim.Mission{}, fmt.Errorf("use -scenario or -spec, not both")
	case specFile != "":
		p, err := spec.ParseFile(specFile)
		if err != nil {
			return sim.Mission{}, err
		}
		if p.Pmax <= 0 {
			return sim.Mission{}, fmt.Errorf("%s: spec needs a positive pmax to simulate against", specFile)
		}
		return sim.ProblemMission(p), nil
	case scenario != "":
		sc, err := mission.ParseScenarioFile(scenario)
		if err != nil {
			return sim.Mission{}, err
		}
		return sim.RoverMission(sc), nil
	default:
		return sim.PaperMission(), nil
	}
}

func printSummary(s sim.Summary) {
	fmt.Printf("campaign: %d runs, seed %d\n", s.Runs, s.Seed)
	fmt.Printf("  survived        %4d (%.1f%%)\n", s.Survived, 100*s.SurvivalRate)
	fmt.Printf("  deadline misses %4d (%.1f%%)\n", s.DeadlineMisses, 100*s.DeadlineMissRate)
	fmt.Printf("  reschedules     %4d   fallbacks %d   waits %d\n", s.Reschedules, s.Fallbacks, s.Waits)
	fmt.Printf("  verify rejects  %4d   constraint drops %d\n", s.VerifyRejects, s.ConstraintDrops)
	if len(s.Failures) > 0 {
		fmt.Printf("  failures:")
		for _, k := range []string{sim.FailTask, sim.FailBattery, sim.FailInfeasible, sim.FailUnschedulable, sim.FailRescheduleLimit} {
			if n := s.Failures[k]; n > 0 {
				fmt.Printf(" %s=%d", k, n)
			}
		}
		fmt.Println()
	}
	fmt.Printf("  battery energy  mean %.4g J  p50 %.4g  p95 %.4g  max %.4g\n",
		s.EnergyCost.Mean, s.EnergyCost.P50, s.EnergyCost.P95, s.EnergyCost.Max)
	if s.Survived > 0 {
		fmt.Printf("  finish time     mean %.4g s  p50 %.4g  p95 %.4g  max %.4g\n",
			s.Finish.Mean, s.Finish.P50, s.Finish.P95, s.Finish.Max)
	}
}

// reportProgress prints the campaign's progress counters to stderr at
// the given interval until the returned stop function is called. The
// counters are process-global (this process runs exactly one
// campaign), so the delta against the start-of-campaign snapshot is
// this campaign's progress.
func reportProgress(every time.Duration, total int) (stop func()) {
	base := sim.Progress()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				p := sim.Progress()
				fmt.Fprintf(os.Stderr, "simulate: %d/%d runs done, %d failed, seed high-water %d\n",
					p.RunsDone-base.RunsDone, total, p.RunsFailed-base.RunsFailed, p.SeedHighWater)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
