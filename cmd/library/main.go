// Command library manages precomputed schedule libraries — the ground
// half of the paper's section 5.3 deployment model (compute schedules
// on the ground, uplink a library, select on board).
//
//	library build -o rover.lib [spec files...]   # rover cases + extra specs
//	library show rover.lib                       # validity-range table
//	library select rover.lib -solar 12 -battery 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/rover"
	"repro/internal/runtime"
	"repro/internal/sched"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "show":
		show(os.Args[2:])
	case "select":
		selectCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  library build -o <file> [spec files...]
  library show <file>
  library select <file> -solar <W> [-battery <W>]`)
	os.Exit(2)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "", "output library file (required)")
	seed := fs.Int64("seed", 0, "random seed for the heuristics")
	noRover := fs.Bool("no-rover", false, "skip the built-in rover schedules")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("build needs -o <file>"))
	}

	opts := sched.Options{Seed: *seed}
	var sel runtime.Selector
	if !*noRover {
		for _, c := range rover.Cases {
			p := rover.BuildIteration(c, rover.Cold)
			r, err := sched.Run(p, opts)
			if err != nil {
				fatal(fmt.Errorf("scheduling %s: %w", p.Name, err))
			}
			sel.Add(runtime.NewEntry(p.Name, p, r.Schedule))
		}
	}
	for _, path := range fs.Args() {
		p, err := impacct.ParseSpecFile(path)
		if err != nil {
			fatal(err)
		}
		r, err := sched.Run(p, opts)
		if err != nil {
			fatal(fmt.Errorf("scheduling %s: %w", p.Name, err))
		}
		sel.Add(runtime.NewEntry(p.Name, p, r.Schedule))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := runtime.Save(f, &sel); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d schedules to %s\n", len(sel.Entries()), *out)
}

func load(path string) *runtime.Selector {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sel, err := runtime.Load(f)
	if err != nil {
		fatal(err)
	}
	return sel
}

func show(args []string) {
	if len(args) != 1 {
		usage()
	}
	fmt.Print(load(args[0]).Table())
}

func selectCmd(args []string) {
	if len(args) < 1 {
		usage()
	}
	sel := load(args[0])
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	solar := fs.Float64("solar", 0, "current free (solar) power in watts")
	battery := fs.Float64("battery", 10, "battery max output in watts")
	fs.Parse(args[1:])

	e, ok := sel.Select(*solar+*battery, *solar)
	if !ok {
		fatal(fmt.Errorf("no schedule fits %.4g W solar + %.4g W battery", *solar, *battery))
	}
	fmt.Printf("selected %s: tau=%d s, needs Pmax>=%.4g W, cost at %.4g W solar = %.4g J\n",
		e.Name, e.Finish, e.RequiredPmax, *solar, e.CostAt(*solar))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "library:", err)
	os.Exit(1)
}
