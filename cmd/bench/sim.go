package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/power"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
)

// simBenchmarks measures the Monte-Carlo simulation layer for
// BENCH_sim.json: the single-iteration replay, the 16-run headline
// campaign (mirroring BenchmarkCampaign in internal/sim, the pair the
// CI speedup gate runs on), and the campaign ladder — 16/256/4096
// runs, each sequential vs pooled-8 vs 2-shard. Every campaign
// iteration builds a fresh service so the content-addressed cache
// warms inside the measurement, exactly as a CLI invocation would.
func simBenchmarks() []entry {
	out := []entry{measureExecute()}
	for _, workers := range []int{1, 8} {
		name, desc := campaignVariant(workers)
		out = append(out, measureCampaign("BenchmarkCampaign/"+name,
			fmt.Sprintf("16-run rover fault campaign, %s, cold cache", desc), 16, workers))
	}
	for _, runs := range []int{16, 256, 4096} {
		for _, workers := range []int{1, 8} {
			name, desc := campaignVariant(workers)
			out = append(out, measureCampaign(
				fmt.Sprintf("BenchmarkCampaignLadder%d/%s", runs, name),
				fmt.Sprintf("%d-run rover fault campaign, %s, cold cache", runs, desc), runs, workers))
		}
		out = append(out, measureCampaignSharded(runs))
	}
	return out
}

func campaignVariant(workers int) (name, desc string) {
	if workers == 1 {
		return "sequential", "worker pool width 1"
	}
	return fmt.Sprintf("pooled-%d", workers), fmt.Sprintf("worker pool width %d", workers)
}

// measureExecute mirrors BenchmarkExecute in internal/exec: the
// second-by-second replay of one worst-case rover iteration.
func measureExecute() entry {
	prob := rover.BuildIteration(rover.Worst, rover.Cold)
	r, err := sched.Run(prob, sched.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	par := rover.Table2(rover.Worst)
	sup := power.Supply{Solar: power.NewSolar(par.Solar)}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bat := power.Battery{MaxPower: par.BatteryMax}
			if _, err := exec.Execute(prob, r.Schedule, sup, &bat, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	return report(entry{
		Name:        "BenchmarkExecute",
		Package:     "repro/internal/exec",
		Description: "second-by-second replay of one worst-case rover iteration",
	}, res)
}

func measureCampaign(name, desc string, runs, workers int) entry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := sim.Campaign{
				Mission: sim.PaperMission(),
				Faults:  sim.DefaultFaults(),
				Runs:    runs,
				Seed:    1,
				Svc:     service.New(service.Config{Workers: workers}),
			}
			if _, err := c.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return report(entry{Name: name, Package: "repro/internal/sim", Description: desc}, res)
}

// measureCampaignSharded is the 2-shard ladder rung: the seed range
// split into two contiguous halves, each folded by its own campaign
// over its own service (modeling a router fan-out over two backend
// processes), the partial reducers pushed through the wire format and
// merged in range order — the exact shape of the scatter-gather path,
// minus the HTTP transport.
func measureCampaignSharded(runs int) entry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var (
				wg     sync.WaitGroup
				halves [2]*sim.Reducer
				errs   [2]error
			)
			for s := 0; s < 2; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					c := sim.Campaign{
						Mission: sim.PaperMission(),
						Faults:  sim.DefaultFaults(),
						Runs:    runs,
						Seed:    1,
						Svc:     service.New(service.Config{Workers: 8}),
					}
					lo, hi := s*runs/2, (s+1)*runs/2
					red, err := c.ReduceRange(context.Background(), lo, hi)
					if err != nil {
						errs[s] = err
						return
					}
					halves[s] = sim.ReducerFromWire(red.Wire())
				}(s)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			halves[0].Merge(halves[1])
			halves[0].Finalize(1)
		}
	})
	return report(entry{
		Name:        fmt.Sprintf("BenchmarkCampaignLadder%d/2shard", runs),
		Package:     "repro/internal/sim",
		Description: fmt.Sprintf("%d-run rover fault campaign split into two contiguous seed halves over two shard services, reducers wire-merged, cold caches", runs),
	}, res)
}

// report fills an entry's metrics from a benchmark result and echoes
// the line to stderr, matching the scheduler-ladder output.
func report(e entry, res testing.BenchmarkResult) entry {
	e.NsPerOp = res.NsPerOp()
	e.BytesPerOp = res.AllocedBytesPerOp()
	e.AllocsPerOp = res.AllocsPerOp()
	fmt.Fprintf(os.Stderr, "%-36s %12d ns/op %12d B/op %8d allocs/op\n",
		e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	return e
}
