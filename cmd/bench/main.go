// Command bench runs the repository's microbenchmark ladders and
// emits a machine-readable record. The default mode measures the
// scheduler core over the benchkit instance ladder; -sim switches to
// the Monte-Carlo simulation layer (single-iteration replay plus the
// campaign ladder: 16/256/4096 runs, sequential vs pooled-8 vs
// 2-shard). The committed records are regenerated with:
//
//	go run ./cmd/bench -out BENCH_sched.json
//	go run ./cmd/bench -sim -out BENCH_sim.json
//
// Each size is measured twice: the incremental pipeline (power profile
// maintained as segment deltas, slack cached with dirty-set
// invalidation) and the Naive ablation (power.Build at every probe,
// slack recomputed from the graph), so the record doubles as the
// before/after evidence for the incremental core.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/benchkit"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/store"
)

type record struct {
	Comment    string  `json:"comment"`
	Date       string  `json:"date"`
	Goos       string  `json:"goos"`
	Goarch     string  `json:"goarch"`
	CPU        string  `json:"cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name        string `json:"name"`
	Package     string `json:"package"`
	Description string `json:"description"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

func main() {
	out := flag.String("out", "-", "output path, or - for stdout")
	sizes := flag.String("sizes", "", "comma-separated instance sizes (default: the full benchkit ladder)")
	naive := flag.Bool("naive", true, "also measure the Naive ablation per size")
	restarts := flag.Bool("restarts", true, "also measure the restart portfolio (sequential and parallel) on the 50-task instance")
	machines := flag.Bool("machines", true, "also measure the heterogeneous (4-machine, DVS) 50-task instance")
	serving := flag.Bool("serving", true, "also measure the serving tier (warm batch dispatch, persistent-store reads)")
	simMode := flag.Bool("sim", false, "measure the Monte-Carlo simulation layer (replay, campaign ladder) instead of the scheduler core")
	flag.Parse()

	ns := benchkit.Sizes
	if *sizes != "" {
		ns = nil
		for _, f := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bench: bad size %q\n", f)
				os.Exit(2)
			}
			ns = append(ns, n)
		}
	}

	rec := record{
		Comment: "Scheduler-core benchmark record over the benchkit instance ladder. " +
			"Regenerate with: go run ./cmd/bench -out BENCH_sched.json",
		Date:   time.Now().Format("2006-01-02"),
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPU:    cpuModel(),
	}
	if *simMode {
		rec.Comment = "Benchmark record for the Monte-Carlo simulation layer: single-iteration " +
			"replay plus the campaign ladder (16/256/4096 runs; sequential vs pooled-8 vs 2-shard). " +
			"Regenerate with: go run ./cmd/bench -sim -out BENCH_sim.json"
		rec.Benchmarks = simBenchmarks()
		writeRecord(*out, rec)
		return
	}
	for _, n := range ns {
		rec.Benchmarks = append(rec.Benchmarks, measure(n, false))
		// The Naive ablation rebuilds the profile and slack from scratch
		// per probe; past the scale tier that is hours per run, and the
		// before/after story is already told by the smaller sizes.
		if *naive && n <= benchkit.ScaleTier {
			rec.Benchmarks = append(rec.Benchmarks, measure(n, true))
		}
	}
	if *restarts {
		for _, cfg := range []struct{ restarts, workers int }{
			{8, 1}, {8, 8}, {32, 1}, {32, 8},
		} {
			rec.Benchmarks = append(rec.Benchmarks, measureRestarts(cfg.restarts, cfg.workers))
		}
	}
	if *machines {
		rec.Benchmarks = append(rec.Benchmarks, measureMachines(50, 4))
	}
	if *serving {
		rec.Benchmarks = append(rec.Benchmarks, measureServiceBatch())
		rec.Benchmarks = append(rec.Benchmarks, measureStoreGet())
	}

	writeRecord(*out, rec)
}

func writeRecord(out string, rec record) {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

// measure runs the full three-stage pipeline (with compaction) on the
// ladder instance of the given size, mirroring BenchmarkPipeline* in
// internal/benchkit.
func measure(n int, naive bool) entry {
	p := benchkit.Generate(n, 1)
	opts := benchkit.Options(n)
	opts.Naive = naive
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.MinPower(p, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	name := fmt.Sprintf("BenchmarkPipeline%d", n)
	desc := fmt.Sprintf("full pipeline on the %d-task ladder instance, incremental core", n)
	if naive {
		name = fmt.Sprintf("BenchmarkPipelineNaive%d", n)
		desc = fmt.Sprintf("full pipeline on the %d-task ladder instance, naive ablation (rebuild profile and slack per probe)", n)
	}
	fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %12d B/op %8d allocs/op\n",
		name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	return entry{
		Name:        name,
		Package:     "repro/internal/benchkit",
		Description: desc,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// measureRestarts runs the restart portfolio on the 50-task ladder
// instance, mirroring BenchmarkPipelineRestarts* in internal/benchkit.
func measureRestarts(restarts, workers int) entry {
	p := benchkit.Generate(50, 1)
	opts := benchkit.Options(50)
	opts.Restarts = restarts
	opts.Workers = workers
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.MinPower(p, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	name := fmt.Sprintf("BenchmarkPipelineRestarts%d", restarts)
	desc := fmt.Sprintf("%d-restart portfolio on the 50-task ladder instance, sequential (Workers=1)", restarts)
	if workers > 1 {
		name += "Par"
		desc = fmt.Sprintf("%d-restart portfolio on the 50-task ladder instance, parallel (Workers=%d)", restarts, workers)
	}
	fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %12d B/op %8d allocs/op\n",
		name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	return entry{
		Name:        name,
		Package:     "repro/internal/benchkit",
		Description: desc,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// measureMachines runs the heterogeneous ladder instance (m machines,
// DVS levels on every third task), mirroring BenchmarkPipelineMachines4
// in internal/benchkit.
func measureMachines(n, m int) entry {
	p := benchkit.GenerateMachines(n, m, 1)
	opts := benchkit.Options(n)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sched.MinPower(p, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	name := fmt.Sprintf("BenchmarkPipelineMachines%d", m)
	desc := fmt.Sprintf("full pipeline on the %d-task ladder instance with %d machines and DVS levels (heterogeneous choice loop)", n, m)
	fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %12d B/op %8d allocs/op\n",
		name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	return entry{
		Name:        name,
		Package:     "repro/internal/benchkit",
		Description: desc,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// measureServiceBatch runs the serving tier's warm bulk path — one
// ScheduleBatchCtx pass of 64 requests over 16 cached problems —
// mirroring BenchmarkServiceBatch in internal/benchkit.
func measureServiceBatch() entry {
	svc := service.New(service.Config{})
	base := make([]service.Request, 16)
	for i := range base {
		p := benchkit.Generate(10, 1).Clone()
		p.Name = fmt.Sprintf("svcbatch-%02d", i)
		base[i] = service.Request{Problem: p, Opts: benchkit.Options(10), Stage: service.StageMinPower}
	}
	reqs := make([]service.Request, 64)
	for i := range reqs {
		reqs[i] = base[i%len(base)]
	}
	ctx := context.Background()
	for _, r := range svc.ScheduleBatchCtx(ctx, reqs) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", r.Err)
			os.Exit(1)
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range svc.ScheduleBatchCtx(ctx, reqs) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	name := "BenchmarkServiceBatch"
	fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %12d B/op %8d allocs/op\n",
		name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	return entry{
		Name:        name,
		Package:     "repro/internal/benchkit",
		Description: "one warm ScheduleBatchCtx pass of 64 requests over 16 cached problems (batch dispatch overhead, no compute)",
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// measureStoreGet runs a point read from the persistent result store
// over 1024 ~2KiB records, mirroring BenchmarkStoreGet in
// internal/benchkit.
func measureStoreGet() entry {
	dir, err := os.MkdirTemp("", "bench-store")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "bench.log"), store.Options{NoAutoCompact: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	defer st.Close()
	val := make([]byte, 2048)
	for i := range val {
		val[i] = byte(i)
	}
	const n = 1024
	for i := 0; i < n; i++ {
		if err := st.Put(fmt.Sprintf("sr1/key-%04d", i), val); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := st.Get(fmt.Sprintf("sr1/key-%04d", i%n)); !ok {
				b.Fatal("miss")
			}
		}
	})
	name := "BenchmarkStoreGet"
	fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %12d B/op %8d allocs/op\n",
		name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	return entry{
		Name:        name,
		Package:     "repro/internal/benchkit",
		Description: "point read from the persistent result store with a populated index (1024 records of ~2KiB)",
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// cpuModel reads the CPU model name for the record header; best
// effort, matching the hand-recorded field in BENCH_sim.json.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
