// Command edit opens an interactive scheduling session on a problem
// specification: the terminal version of the paper's power-aware Gantt
// chart tool. Drag bins with move/drag, pin them with lock, let the
// automated pipeline rearrange the rest with reschedule, and undo
// freely. Type help for the command list.
//
//	edit testdata/example9.spec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/repl"
)

func main() {
	seed := flag.Int64("seed", 0, "random seed for the heuristics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: edit [flags] <spec-file>")
		os.Exit(2)
	}
	prob, err := impacct.ParseSpecFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	session, err := impacct.NewSession(prob, impacct.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("editing %s (%d tasks); type help for commands\n", prob.Name, len(prob.Tasks))
	r := &repl.REPL{S: session, In: os.Stdin, Out: os.Stdout, Prompt: "impacct> "}
	if err := r.Run(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edit:", err)
	os.Exit(1)
}
