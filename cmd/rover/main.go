// Command rover regenerates Table 3 of the paper: performance and
// energy cost of the hand-crafted JPL schedule versus the power-aware
// schedules for one Mars-rover iteration (two steps) in the best,
// typical, and worst environmental cases. With -gantt it also renders
// the power-aware schedules (the power views of Figs. 9-11).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gantt"
	"repro/internal/model"
	"repro/internal/rover"
	"repro/internal/sched"
)

func main() {
	var (
		showGantt = flag.Bool("gantt", false, "render the power-aware schedule of each case")
		preheat   = flag.Bool("preheat", true, "include the best-case pre-heat iterations (Table 3's 1st/2nd rows)")
		seed      = flag.Int64("seed", 0, "random seed for the heuristics")
	)
	flag.Parse()
	opts := sched.Options{Seed: *seed}

	fmt.Println("Table 3: performance and energy cost of the schedules")
	fmt.Printf("%-8s | %26s | %26s\n", "", "JPL", "Power-aware")
	fmt.Printf("%-8s | %10s %7s %6s | %10s %7s %6s\n",
		"Pmin (W)", "cost (J)", "util", "tau(s)", "cost (J)", "util", "tau(s)")

	for _, c := range rover.Cases {
		pJPL, sJPL := rover.JPL(c)
		mJPL := rover.Measure(pJPL, sJPL)

		prob := rover.BuildIteration(c, rover.Cold)
		costLabel := ""
		var m rover.Metrics
		if c == rover.Best && *preheat {
			first := mustRun(rover.BuildIteration(c, rover.ColdPreheat), opts)
			second := mustRun(rover.BuildIteration(c, rover.Warm), opts)
			m = rover.Measure(first.Compiled.Prob, first.Schedule)
			costLabel = fmt.Sprintf("%.1f(1st) %.1f(2nd)", first.EnergyCost(), second.EnergyCost())
		} else {
			r := mustRun(prob, opts)
			m = rover.Measure(prob, r.Schedule)
			costLabel = fmt.Sprintf("%.1f", m.EnergyCost)
		}
		fmt.Printf("%-8.4g | %10.1f %6.0f%% %6d | %10s %6.0f%% %6d\n",
			rover.Table2(c).Solar,
			mJPL.EnergyCost, 100*mJPL.Utilization, mJPL.Finish,
			costLabel, 100*m.Utilization, m.Finish)
	}

	if *showGantt {
		for _, c := range rover.Cases {
			prob := rover.BuildIteration(c, rover.Cold)
			r := mustRun(prob, opts)
			fmt.Println()
			fmt.Print(gantt.New(prob, r.Schedule).ASCII(1))
		}
	}
}

func mustRun(p *model.Problem, opts sched.Options) *sched.Result {
	r, err := sched.Run(p, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rover:", err)
		os.Exit(1)
	}
	return r
}
