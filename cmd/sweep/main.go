// Command sweep explores the power/performance design space of a
// problem: it schedules the problem under a range of max-power budgets,
// prints every design point, and marks the Pareto front of the
// finish-time versus energy-cost trade-off. This is the exploration
// loop the IMPACCT framework was built to enable.
//
// Design points are submitted as a batch to the scheduling service:
// they evaluate concurrently on a bounded worker pool, and every
// schedule lands in the content-addressed result cache (pass -stats to
// see the cache counters after the sweep).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro"
	"repro/internal/analysis"
	"repro/internal/service"
)

func main() {
	var (
		budgets      = flag.String("pmax", "", "comma-separated max-power budgets to sweep (default: 10 points around the spec's Pmax)")
		seed         = flag.Int64("seed", 0, "random seed for the heuristics")
		pareto       = flag.Bool("pareto", true, "also print the time/energy Pareto front")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		restarts     = flag.Int("restarts", 0, "restart portfolio size per design point (0 = single run)")
		schedWorkers = flag.Int("sched-workers", 0, "concurrent restart workers inside each pipeline run; any value yields identical results (0 = GOMAXPROCS)")
		showStats    = flag.Bool("stats", false, "print scheduling-service metrics after the sweep")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sweep [flags] <spec-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prob, err := impacct.ParseSpecFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var list []float64
	if *budgets != "" {
		for _, f := range strings.Split(*budgets, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -pmax entry %q: %v", f, err))
			}
			list = append(list, v)
		}
	} else {
		list = defaultBudgets(prob)
	}

	// Ctrl-C aborts the sweep cooperatively: in-flight pipeline runs
	// stop at their next cancellation poll and unstarted points are
	// never submitted (their rows report the cancellation).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	svc := service.New(service.Config{Workers: *workers})
	pts := analysis.SweepPmaxParallelCtx(ctx, prob, list, impacct.Options{Seed: *seed, Restarts: *restarts, Workers: *schedWorkers}, svc)
	fmt.Printf("design points for %s:\n", prob.Name)
	fmt.Print(analysis.FormatPoints(pts))

	if *pareto {
		fmt.Println("\npareto front (finish time vs energy cost):")
		fmt.Print(analysis.FormatPoints(impacct.Pareto(pts)))
	}
	if *showStats {
		data, err := json.MarshalIndent(svc.Stats(), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nservice stats:\n%s\n", data)
	}
}

// defaultBudgets spreads ten budgets from "one heavy task" up to 150 %
// of the spec's Pmax (or of the total parallel power when unset).
func defaultBudgets(p *impacct.Problem) []float64 {
	top := p.Pmax
	if top == 0 {
		for _, t := range p.Tasks {
			top += t.Power
		}
		top += p.BasePower
	}
	lo := 0.0
	for _, t := range p.Tasks {
		if t.Power+p.BasePower > lo {
			lo = t.Power + p.BasePower
		}
	}
	hi := top * 1.5
	var out []float64
	for i := 0; i < 10; i++ {
		out = append(out, lo+(hi-lo)*float64(i)/9)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
