// Command loadgen drives a serving tier — one serve process or a
// router fronting several — with Zipf-skewed closed-loop load and
// reports latency quantiles, throughput, and cache hit rates measured
// from the target's own /stats counters.
//
//	loadgen -target http://localhost:8080 -duration 5s -workers 8 -zipf 1.1
//
// The Zipf skew concentrates requests on a hot head of the problem
// pool (exercising the in-memory L1 cache) while the long tail probes
// the persistent L2 store and the compute path. Assertion flags turn
// a run into a CI check: -min-l2-hits proves warm-start worked after
// a restart, -max-p99 enforces a latency budget; violations exit 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		target   = flag.String("target", "http://localhost:8080", "base URL of the serve process or router")
		problems = flag.Int("problems", 32, "distinct problems in the pool")
		tasks    = flag.Int("tasks", 20, "tasks per synthetic problem")
		seed     = flag.Int64("seed", 1, "base seed for problems and Zipf draws")
		zipfS    = flag.Float64("zipf", 1.1, "Zipf skew parameter s (> 1)")
		workers  = flag.Int("workers", 4, "concurrent closed-loop workers")
		duration = flag.Duration("duration", 5*time.Second, "load-generation duration")
		batch    = flag.Int("batch", 1, "items per request (>1 uses POST /schedule/batch)")
		register = flag.Bool("register", true, "register the problem pool before the run")
		campaign = flag.Int("campaign-runs", 0, "campaign mode: each request is a POST /simulate/campaign of this many runs over a Zipf-drawn inline spec (0 disables; takes precedence over -batch)")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")

		minL2      = flag.Int64("min-l2-hits", -1, "assert at least this many L2 hits (negative disables)")
		minHitRate = flag.Float64("min-hit-rate", -1, "assert at least this combined hit rate (negative disables)")
		maxP99     = flag.Duration("max-p99", 0, "assert p99 latency at most this (0 disables)")
		maxErrors  = flag.Int("max-errors", -1, "assert at most this many request+item errors (negative = any error fails)")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *duration+2*time.Minute)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Target:   *target,
		Problems: *problems,
		Tasks:    *tasks,
		Seed:     *seed,
		Zipf:     *zipfS,
		Workers:  *workers,
		Duration: *duration,
		Batch:    *batch,
		Register: *register,

		CampaignRuns: *campaign,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		fmt.Println(string(data))
	} else {
		fmt.Println(rep)
	}

	if err := rep.Assert(*minL2, *minHitRate, *maxP99, *maxErrors); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
