// Command ablate compares the scheduler's heuristic configurations on
// one problem: the default pipeline against single scan orders, single
// slot heuristics, disabled locks, full longest-path recomputation, and
// multi-restart search.
//
//	ablate testdata/example9.spec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/analysis"
	"repro/internal/sched"
)

func main() {
	var (
		seed     = flag.Int64("seed", 0, "random seed for the heuristics")
		restarts = flag.Int("restarts", 8, "restart count for the multi-restart row")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ablate [flags] <spec-file>")
		os.Exit(2)
	}
	prob, err := impacct.ParseSpecFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}

	configs := map[string]sched.Options{
		"default":            {Seed: *seed},
		"scan-forward-only":  {Seed: *seed, ScanOrders: []sched.ScanOrder{sched.ScanForward}},
		"scan-reverse-only":  {Seed: *seed, ScanOrders: []sched.ScanOrder{sched.ScanReverse}},
		"scan-random-only":   {Seed: *seed, ScanOrders: []sched.ScanOrder{sched.ScanRandom}},
		"slot-start-only":    {Seed: *seed, SlotChoices: []sched.SlotChoice{sched.SlotStartAtGap}},
		"slot-finish-only":   {Seed: *seed, SlotChoices: []sched.SlotChoice{sched.SlotFinishAtGapEnd}},
		"locks-disabled":     {Seed: *seed, DisableLocks: true},
		"full-recompute":     {Seed: *seed, FullRecompute: true},
		"multi-restart":      {Seed: *seed, Restarts: *restarts},
		"single-scan-budget": {Seed: *seed, MaxScans: 1},
		"compaction":         {Seed: *seed, Compact: true},
	}
	rows := analysis.CompareHeuristics(prob, configs)
	fmt.Printf("heuristic ablation on %s:\n", prob.Name)
	fmt.Print(analysis.FormatHeuristicRows(rows))
}
