// Command serve hosts the schedule visualization server: the paper's
// built-in problems (the nine-task example and the Mars rover cases)
// plus any spec files given on the command line, browsable as
// power-aware Gantt charts.
//
//	serve -addr :8080 [spec files...]
//
// Then open http://localhost:8080/ — each problem links to SVG, ASCII,
// and DOT renderings; stage= and format= query parameters select
// pipeline stages. POST a spec document to /problems to register more.
//
// All scheduling runs through a shared service layer with a
// content-addressed result cache; its metrics are served as JSON at
// /stats and as expvar at /debug/vars (under "sched_service").
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro"
	"repro/internal/paperex"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/web"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Int64("seed", 0, "random seed for the heuristics")
		cacheSize = flag.Int("cache", 1024, "schedule cache capacity in entries (negative disables)")
		workers   = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	svc := service.New(service.Config{CacheSize: *cacheSize, Workers: *workers})
	svc.Publish("sched_service")
	srv := web.NewServerWith(sched.Options{Seed: *seed}, svc)
	srv.Add(paperex.Nine())
	for _, c := range rover.Cases {
		srv.Add(rover.BuildIteration(c, rover.Cold))
	}
	for _, path := range flag.Args() {
		p, err := impacct.ParseSpecFile(path)
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		srv.Add(p)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("POST /verify", srv.VerifyHandlerFunc)
	mux.Handle("GET /debug/vars", expvar.Handler())

	fmt.Printf("serving %d problems on %s (metrics: /stats, /debug/vars)\n", len(srv.Names()), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
