// Command serve hosts the schedule visualization server: the paper's
// built-in problems (the nine-task example and the Mars rover cases)
// plus any spec files given on the command line, browsable as
// power-aware Gantt charts.
//
//	serve -addr :8080 [spec files...]
//
// Then open http://localhost:8080/ — each problem links to SVG, ASCII,
// and DOT renderings; stage= and format= query parameters select
// pipeline stages. POST a spec document to /problems to register more.
//
// All scheduling runs through a shared service layer with a
// content-addressed result cache; its metrics are served as JSON at
// /stats and as expvar at /debug/vars (under "sched_service"). Pass
// -pprof to additionally mount net/http/pprof under /debug/pprof/ for
// CPU, heap, and contention profiling of a live server.
//
// Pass -cache-dir to back the in-memory cache with a persistent
// content-addressed store: results survive restarts (warm start), and
// the graceful drain flushes and fsyncs the store before exit. In a
// sharded deployment behind cmd/router, give each backend its own
// -shard-id (labels its /stats) and cache directory.
//
// The server is hardened for unattended operation: every request runs
// under a compute budget (-request-timeout), admission control sheds
// work beyond -queue with 429 + Retry-After, protocol timeouts bound
// slow clients, and SIGINT/SIGTERM drain in-flight requests and the
// worker pool before exit (-shutdown-timeout).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro"
	"repro/internal/paperex"
	"repro/internal/rover"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/web"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		seed         = flag.Int64("seed", 0, "random seed for the heuristics")
		restarts     = flag.Int("restarts", 0, "default restart portfolio size per schedule (0 = single run; requests may override with restarts=)")
		schedWorkers = flag.Int("sched-workers", 0, "concurrent restart workers inside each pipeline run; any value yields identical results (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 1024, "schedule cache capacity in entries (negative disables)")
		cacheDir     = flag.String("cache-dir", "", "directory for the persistent result store (empty disables)")
		shardID      = flag.String("shard-id", "", "serving-tier shard label reported in /stats")
		workers      = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")

		queue          = flag.Int("queue", 0, "admission-control wait queue (0 = 8x workers, negative = no queue)")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request compute budget (0 = none)")
		drainGrace     = flag.Duration("drain-grace", 0, "delay between flipping /readyz to 503 and closing the listener, so health probers evict this shard first")

		readHeaderTimeout = flag.Duration("read-header-timeout", 5*time.Second, "http header read timeout")
		readTimeout       = flag.Duration("read-timeout", 15*time.Second, "http request read timeout")
		writeTimeout      = flag.Duration("write-timeout", 60*time.Second, "http response write timeout")
		idleTimeout       = flag.Duration("idle-timeout", 120*time.Second, "http keep-alive idle timeout")
		maxHeaderBytes    = flag.Int("max-header-bytes", 1<<20, "http header size cap")
		shutdownTimeout   = flag.Duration("shutdown-timeout", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	// The persistent store is per shard: distinct shards own distinct
	// key slices behind the router, so their log files never need to
	// merge, and a restart warm-starts from exactly its own slice.
	var st *store.Store
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			log.Fatalf("serve: cache dir: %v", err)
		}
		name := "results.log"
		if *shardID != "" {
			name = "shard-" + *shardID + ".log"
		}
		var err error
		st, err = store.Open(filepath.Join(*cacheDir, name), store.Options{})
		if err != nil {
			log.Fatalf("serve: open store: %v", err)
		}
		if n := st.RecoveredDrops(); n > 0 {
			log.Printf("serve: store recovery dropped %d corrupt record(s)", n)
		}
		fmt.Printf("store: %d warm entries (%d bytes)\n", st.Len(), st.Size())
	}

	cfg := service.Config{
		CacheSize:      *cacheSize,
		Workers:        *workers,
		MaxQueue:       *queue,
		DefaultTimeout: *requestTimeout,
	}
	if st != nil {
		cfg.Store = st
	}
	svc := service.New(cfg)
	svc.Publish("sched_service")
	srv := web.NewServerWith(sched.Options{Seed: *seed, Restarts: *restarts, Workers: *schedWorkers}, svc)
	srv.SetShardID(*shardID)
	srv.Add(paperex.Nine())
	for _, c := range rover.Cases {
		srv.Add(rover.BuildIteration(c, rover.Cold))
	}
	for _, path := range flag.Args() {
		p, err := impacct.ParseSpecFile(path)
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		srv.Add(p)
	}
	// Registrations share the result store's log: uploads persist their
	// spec text, so a restarted shard re-registers everything it knew
	// and its warm L2 results stay addressable instead of 404ing.
	if st != nil {
		srv.SetSpecStore(st)
		n, err := srv.LoadPersistedProblems()
		if err != nil {
			log.Printf("serve: %v", err)
		}
		if n > 0 {
			fmt.Printf("store: re-registered %d persisted problem(s)\n", n)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("POST /verify", srv.VerifyHandlerFunc)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if *pprofOn {
		// net/http/pprof registers on DefaultServeMux in its init;
		// explicit routes keep our mux (and its "/" handler) in charge.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("serving %d problems on %s (metrics: /stats, /debug/vars)\n", len(srv.Names()), *addr)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out the drain

	// Flip readiness first and give health probers a beat to evict this
	// shard from the live set; requests then stop arriving *before* the
	// listener closes, instead of failing into it.
	srv.SetReady(false)
	if *drainGrace > 0 {
		fmt.Printf("serve: not ready, waiting %v for probers to notice\n", *drainGrace)
		time.Sleep(*drainGrace)
	}

	fmt.Println("serve: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("serve: http shutdown: %v", err)
	}
	if err := svc.Drain(sctx); err != nil {
		log.Printf("serve: worker drain: %v", err)
	}
	// Close after the drain: every write-through from in-flight work has
	// landed, so the final fsync makes the whole run's results durable
	// for the next warm start.
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("serve: store close: %v", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}
