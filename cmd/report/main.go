// Command report runs every reproduced experiment and emits a markdown
// report of paper-vs-measured values — the generator behind
// EXPERIMENTS.md's measured columns.
//
//	report > measured.md
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mission"
	"repro/internal/paperex"
	"repro/internal/rover"
	"repro/internal/sched"
)

func main() {
	seed := flag.Int64("seed", 0, "random seed for the heuristics")
	flag.Parse()
	opts := sched.Options{Seed: *seed}

	fmt.Println("# Measured results")
	fmt.Println()

	table3(opts)
	table4(opts)
	figures(opts)
}

func must(r *sched.Result, err error) *sched.Result {
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	return r
}

func table3(opts sched.Options) {
	fmt.Println("## Table 3 — one iteration per case")
	fmt.Println()
	fmt.Println("| case | policy | cost (J) | utilization | tau (s) |")
	fmt.Println("|---|---|---|---|---|")
	for _, c := range rover.Cases {
		pJ, sJ := rover.JPL(c)
		mJ := rover.Measure(pJ, sJ)
		fmt.Printf("| %s | JPL | %.1f | %.1f%% | %d |\n", c, mJ.EnergyCost, 100*mJ.Utilization, mJ.Finish)

		prob := rover.BuildIteration(c, rover.Cold)
		r := must(sched.Run(prob, opts))
		m := rover.Measure(prob, r.Schedule)
		fmt.Printf("| %s | power-aware | %.1f | %.1f%% | %d |\n", c, m.EnergyCost, 100*m.Utilization, m.Finish)
	}
	first := must(sched.Run(rover.BuildIteration(rover.Best, rover.ColdPreheat), opts))
	warm := must(sched.Run(rover.BuildIteration(rover.Best, rover.Warm), opts))
	fmt.Printf("| best | power-aware 1st/2nd | %.1f / %.1f | — | %d / %d |\n",
		first.EnergyCost(), warm.EnergyCost(), first.Finish(), warm.Finish())
	fmt.Println()
}

func table4(opts sched.Options) {
	fmt.Println("## Table 4 — 48-step mission")
	fmt.Println()
	jpl, err := mission.Simulate(mission.Config{
		TargetSteps: 48, Phases: mission.PaperScenario(), Policy: &mission.JPLPolicy{},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	pa, err := mission.Simulate(mission.Config{
		TargetSteps: 48, Phases: mission.PaperScenario(),
		Policy: &mission.PowerAwarePolicy{Opts: opts},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	fmt.Println("```")
	fmt.Print(mission.FormatTable(jpl, pa))
	fmt.Println("```")
	fmt.Println()
}

func figures(opts sched.Options) {
	fmt.Println("## Figures")
	fmt.Println()
	fmt.Println("| figure | measured |")
	fmt.Println("|---|---|")

	p := paperex.Nine()
	rt := must(sched.Timing(p, opts))
	fmt.Printf("| Fig. 2 (time-valid) | tau=%d s, peak=%.1f W, %d spike(s) |\n",
		rt.Finish(), rt.Peak(), len(rt.Profile.Spikes(p.Pmax)))
	rm := must(sched.MaxPower(paperex.Nine(), opts))
	fmt.Printf("| Fig. 5 (valid) | tau=%d s, cost=%.1f J, util=%.1f%% |\n",
		rm.Finish(), rm.EnergyCost(), 100*rm.Utilization())
	rf := must(sched.Run(paperex.Nine(), opts))
	fmt.Printf("| Fig. 7 (improved) | tau=%d s, cost=%.1f J, util=%.1f%%, needs Pmax>=%.4g W |\n",
		rf.Finish(), rf.EnergyCost(), 100*rf.Utilization(), rf.Peak())

	for _, c := range rover.Cases {
		r := must(sched.Run(rover.BuildIteration(c, rover.Cold), opts))
		fig := map[rover.Case]string{rover.Best: "Fig. 9", rover.Typical: "Fig. 10", rover.Worst: "Fig. 11"}[c]
		fmt.Printf("| %s (%s case) | tau=%d s, cost=%.1f J, util=%.1f%% |\n",
			fig, c, r.Finish(), r.EnergyCost(), 100*r.Utilization())
	}

	un := must(sched.Run(rover.BuildUnrolled(rover.Best, 2, true), opts))
	fmt.Printf("| Fig. 9 (two unrolled iterations) | tau=%d s, total cost=%.1f J |\n",
		un.Finish(), un.EnergyCost())
	fmt.Println()
}
