// Command impacct schedules a power-aware problem specification and
// renders the result.
//
// Usage:
//
//	impacct [flags] <spec-file>
//
// The spec file uses the format of internal/spec ("-" reads stdin).
// Flags select the pipeline stage, output format, and heuristics.
//
// Example:
//
//	impacct -stage minpower -format ascii testdata/example9.spec
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/dot"
)

func main() {
	var (
		stage    = flag.String("stage", "minpower", "pipeline stage: timing, maxpower, or minpower")
		format   = flag.String("format", "ascii", "output: ascii, svg, json, spec, dot, or metrics")
		scale    = flag.Int("scale", 1, "seconds per character column in ascii output")
		seed     = flag.Int64("seed", 0, "random seed for the heuristics")
		restarts = flag.Int("restarts", 0, "restart portfolio size: run the pipeline this many times with perturbed orders and keep the best result (0 = single run)")
		workers  = flag.Int("workers", 0, "concurrent restart workers; any value yields identical results (0 = GOMAXPROCS)")
		out      = flag.String("o", "", "write output to this file instead of stdout")
		check    = flag.Bool("verify", false, "independently verify the schedule before emitting it")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: impacct [flags] <spec-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var (
		prob *impacct.Problem
		err  error
	)
	if flag.Arg(0) == "-" {
		prob, err = impacct.ParseSpec(os.Stdin)
	} else {
		prob, err = impacct.ParseSpecFile(flag.Arg(0))
	}
	if err != nil {
		fatal(err)
	}

	opts := impacct.Options{Seed: *seed, Restarts: *restarts, Workers: *workers}
	var res *impacct.Result
	switch *stage {
	case "timing":
		res, err = impacct.Timing(prob, opts)
	case "maxpower":
		res, err = impacct.MaxPower(prob, opts)
	case "minpower":
		res, err = impacct.Run(prob, opts)
	default:
		fatal(fmt.Errorf("unknown stage %q", *stage))
	}
	if err != nil {
		fatal(err)
	}
	if *check {
		if rep := impacct.VerifyAssigned(prob, res.Schedule, res.Assignment); !rep.OK() {
			fatal(fmt.Errorf("schedule failed verification: %w", rep.Err()))
		}
	}

	// Render against the effective problem so heterogeneous runs show
	// the chosen machine/level delays and powers; for degenerate
	// problems this is the parsed problem itself.
	eff := res.EffectiveProblem()
	var body string
	switch *format {
	case "ascii":
		body = impacct.NewChart(eff, res.Schedule).ASCII(*scale)
	case "svg":
		body = impacct.NewChart(eff, res.Schedule).SVG()
	case "json":
		body = renderJSON(eff, res)
	case "spec":
		body = impacct.FormatSpec(prob)
	case "dot":
		body = dot.Scheduled(eff, res.Schedule)
	case "metrics":
		body = renderMetrics(res)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}

	if *out == "" {
		fmt.Print(body)
		return
	}
	if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
		fatal(err)
	}
}

func renderMetrics(res *impacct.Result) string {
	return fmt.Sprintf("finish: %d s\npeak: %.4g W\nenergy cost: %.4g J\nutilization: %.2f%%\n",
		res.Finish(), res.Peak(), res.EnergyCost(), 100*res.Utilization())
}

func renderJSON(prob *impacct.Problem, res *impacct.Result) string {
	type taskOut struct {
		Name     string  `json:"name"`
		Resource string  `json:"resource"`
		Start    int     `json:"start"`
		End      int     `json:"end"`
		Power    float64 `json:"power"`
	}
	doc := struct {
		Problem     string    `json:"problem"`
		Finish      int       `json:"finish"`
		Peak        float64   `json:"peak"`
		EnergyCost  float64   `json:"energyCost"`
		Utilization float64   `json:"utilization"`
		Tasks       []taskOut `json:"tasks"`
	}{
		Problem:     prob.Name,
		Finish:      res.Finish(),
		Peak:        res.Peak(),
		EnergyCost:  res.EnergyCost(),
		Utilization: res.Utilization(),
	}
	for i, t := range prob.Tasks {
		doc.Tasks = append(doc.Tasks, taskOut{
			Name:     t.Name,
			Resource: t.Resource,
			Start:    res.Schedule.Start[i],
			End:      res.Schedule.Start[i] + t.Delay,
			Power:    t.Power,
		})
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	return string(b) + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impacct:", err)
	os.Exit(1)
}
